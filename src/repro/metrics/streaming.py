"""Streaming (online) aggregation of the paper's metrics.

:class:`StreamingMetrics` folds each job *once, at completion time* into

* O(1) scalar state per headline aggregate — sequential sums for the mean
  response/wait/slowdown (exactly the summation order
  :meth:`repro.simulator.simulation.Simulation.result` uses), first-submit /
  last-end extrema for the makespan, malleable/mate counters, and the
  CPU-second integral behind the energy figure — and
* compact chunked ``float64`` buffers of the per-job metric values (8 bytes
  per job per metric instead of a retained :class:`~repro.simulator.job.Job`
  object), from which the :class:`~repro.metrics.aggregates.WorkloadMetrics`
  means and the exact slowdown median/p95 are computed.

The buffers exist for bit-identity: :func:`repro.metrics.aggregates
.compute_metrics` takes ``np.mean``/``np.median``/``np.percentile`` over
per-job arrays, and NumPy's pairwise summation is *not* reproducible from a
single running scalar sum.  Folding the same values in the same (completion)
order into a ``float64`` buffer and reducing with the same NumPy calls is
reproducible — ``StreamingMetrics.workload_metrics`` matches
``compute_metrics`` bit for bit, which the property suite asserts on every
workload preset.

With ``Simulation(..., retain_jobs=False)`` the driver folds each job here
and then discards it, so a million-job replay holds the metric buffers
(~40 bytes/job) instead of the full per-job state (resource histories,
per-node CPU maps — kilobytes per job).
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.metrics.aggregates import WorkloadMetrics
from repro.simulator.job import Job

__all__ = ["ChunkedFloatBuffer", "StreamingMetrics"]


class ChunkedFloatBuffer:
    """An append-only ``float64`` buffer allocated in growing chunks.

    Chunks double from ``min_chunk`` up to ``max_chunk`` entries, so tiny
    runs stay tiny while million-entry runs amortise allocation; the full
    array (for NumPy reductions) is materialised only on request.
    """

    __slots__ = ("_chunks", "_current", "_fill", "_min_chunk", "_max_chunk")

    def __init__(self, min_chunk: int = 1024, max_chunk: int = 65536) -> None:
        if min_chunk <= 0 or max_chunk < min_chunk:
            raise ValueError(f"invalid chunk sizes {min_chunk}/{max_chunk}")
        self._chunks: List[np.ndarray] = []
        self._current: Optional[np.ndarray] = None
        self._fill = 0
        self._min_chunk = min_chunk
        self._max_chunk = max_chunk

    def __len__(self) -> int:
        return sum(len(c) for c in self._chunks) + self._fill

    def append(self, value: float) -> None:
        current = self._current
        if current is None or self._fill == len(current):
            if current is not None:
                self._chunks.append(current)
            size = (
                self._min_chunk
                if current is None
                else min(self._max_chunk, 2 * len(current))
            )
            current = self._current = np.empty(size, dtype=np.float64)
            self._fill = 0
        current[self._fill] = value
        self._fill += 1

    def as_array(self) -> np.ndarray:
        """The buffered values, in append order, as one ``float64`` array."""
        parts = list(self._chunks)
        if self._current is not None and self._fill:
            parts.append(self._current[: self._fill])
        if not parts:
            return np.empty(0, dtype=np.float64)
        if len(parts) == 1:
            return parts[0]
        return np.concatenate(parts)

    @property
    def nbytes(self) -> int:
        """Bytes currently allocated (including unfilled chunk headroom)."""
        total = sum(c.nbytes for c in self._chunks)
        if self._current is not None:
            total += self._current.nbytes
        return total


class StreamingMetrics:
    """Online accumulator of every aggregate the paper reports.

    ``fold(job)`` must be called exactly once per completed job, in
    completion order (the order ``Simulation.completed`` would have); all
    derived quantities are then available without the job objects.
    """

    #: Bounded-slowdown threshold, matching ``compute_metrics``.
    BOUNDED_SLOWDOWN_TAU = 10.0

    __slots__ = (
        "count",
        "sum_response",
        "sum_slowdown",
        "sum_wait",
        "min_submit",
        "max_end",
        "malleable_scheduled",
        "mate_jobs",
        "dynamic_cpu_seconds",
        "_response",
        "_wait",
        "_slowdown",
        "_bounded",
        "_runtime",
    )

    def __init__(self) -> None:
        self.count = 0
        # Sequential scalar sums — the summation order of Simulation.result().
        self.sum_response = 0.0
        self.sum_slowdown = 0.0
        self.sum_wait = 0.0
        # Extrema over the *folded* jobs (the run-level first submit, which
        # also covers jobs that never complete, is the simulation's).
        self.min_submit = math.inf
        self.max_end = 0.0
        self.malleable_scheduled = 0
        self.mate_jobs = 0
        # CPU-second integral of the resource histories, accumulated in the
        # same (job, slot) order as ``simulation._workload_energy``.
        self.dynamic_cpu_seconds = 0.0
        self._response = ChunkedFloatBuffer()
        self._wait = ChunkedFloatBuffer()
        self._slowdown = ChunkedFloatBuffer()
        self._bounded = ChunkedFloatBuffer()
        self._runtime = ChunkedFloatBuffer()

    # ------------------------------------------------------------------ #
    def fold(self, job: Job) -> None:
        """Fold one *completed* job into the accumulator."""
        if job.end_time is None or job.start_time is None:
            raise ValueError(f"job {job.job_id} is not completed; cannot fold")
        response = job.end_time - job.submit_time
        wait = job.start_time - job.submit_time
        slowdown = response / job.static_runtime
        self.count += 1
        self.sum_response += response
        self.sum_slowdown += slowdown
        self.sum_wait += wait
        if job.submit_time < self.min_submit:
            self.min_submit = job.submit_time
        if job.end_time > self.max_end:
            self.max_end = job.end_time
        if job.scheduled_malleable:
            self.malleable_scheduled += 1
        if job.was_mate:
            self.mate_jobs += 1
        self._response.append(response)
        self._wait.append(wait)
        self._slowdown.append(slowdown)
        self._bounded.append(
            max(1.0, response / max(job.static_runtime, self.BOUNDED_SLOWDOWN_TAU))
        )
        self._runtime.append(job.end_time - job.start_time)
        for slot in job.resource_history:
            duration = slot.duration
            if duration > 0 and math.isfinite(duration):
                self.dynamic_cpu_seconds += slot.total_cpus * duration

    # ------------------------------------------------------------------ #
    def makespan(self, first_submit: Optional[float] = None) -> float:
        """Last end minus the run origin (the folded minimum by default)."""
        if not self.count:
            return 0.0
        origin = self.min_submit if first_submit is None else first_submit
        return max(0.0, self.max_end - origin)

    def energy_joules(
        self,
        num_nodes: int,
        cpus_per_node: int,
        idle_watts: float,
        peak_watts: float,
        first_submit: float,
        last_end: float,
    ) -> float:
        """Workload energy, mirroring ``simulation._workload_energy``."""
        if not self.count or last_end <= first_submit:
            return 0.0
        idle_energy = num_nodes * idle_watts * (last_end - first_submit)
        per_cpu = (peak_watts - idle_watts) / cpus_per_node
        return idle_energy + per_cpu * self.dynamic_cpu_seconds

    def workload_metrics(
        self, energy_joules: float = 0.0, first_submit: Optional[float] = None
    ) -> WorkloadMetrics:
        """The full :class:`WorkloadMetrics`, bit-identical to
        :func:`repro.metrics.aggregates.compute_metrics` over the same jobs
        in the same order."""
        if not self.count:
            return WorkloadMetrics(
                num_jobs=0,
                makespan=0.0,
                avg_response_time=0.0,
                avg_wait_time=0.0,
                avg_slowdown=0.0,
                avg_bounded_slowdown=0.0,
                median_slowdown=0.0,
                p95_slowdown=0.0,
                avg_runtime=0.0,
                malleable_scheduled=0,
                mate_jobs=0,
                energy_joules=energy_joules,
            )
        slowdowns = self._slowdown.as_array()
        return WorkloadMetrics(
            num_jobs=self.count,
            makespan=self.makespan(first_submit),
            avg_response_time=float(np.mean(self._response.as_array())),
            avg_wait_time=float(np.mean(self._wait.as_array())),
            avg_slowdown=float(np.mean(slowdowns)),
            avg_bounded_slowdown=float(np.mean(self._bounded.as_array())),
            median_slowdown=float(np.median(slowdowns)),
            p95_slowdown=float(np.percentile(slowdowns, 95)),
            avg_runtime=float(np.mean(self._runtime.as_array())),
            malleable_scheduled=self.malleable_scheduled,
            mate_jobs=self.mate_jobs,
            energy_joules=energy_joules,
        )

    @property
    def buffer_bytes(self) -> int:
        """Bytes held by the metric buffers (the streaming mode's O(n) part)."""
        return (
            self._response.nbytes
            + self._wait.nbytes
            + self._slowdown.nbytes
            + self._bounded.nbytes
            + self._runtime.nbytes
        )
