"""Per-day time series (Figure 7 of the paper).

Figure 7 plots, for workload 4, the average slowdown per day of static
backfill and of SD-Policy, together with the number of jobs scheduled with
malleability each day.  Jobs are assigned to the day of their submission.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List


from repro.simulator.job import Job

SECONDS_PER_DAY = 86400.0


def _day_of(job: Job, origin: float) -> int:
    return int((job.submit_time - origin) // SECONDS_PER_DAY)


def daily_slowdown(jobs: Iterable[Job], origin: float | None = None) -> Dict[int, float]:
    """Average slowdown per submission day.

    ``origin`` defaults to the earliest submission time so day 0 is the
    first day of the workload.
    """
    done = [j for j in jobs if j.end_time is not None]
    if not done:
        return {}
    base = origin if origin is not None else min(j.submit_time for j in done)
    sums: Dict[int, float] = {}
    counts: Dict[int, int] = {}
    for job in done:
        day = _day_of(job, base)
        sums[day] = sums.get(day, 0.0) + job.slowdown
        counts[day] = counts.get(day, 0) + 1
    return {day: sums[day] / counts[day] for day in sorted(sums)}


def daily_malleable_counts(jobs: Iterable[Job], origin: float | None = None) -> Dict[int, int]:
    """Number of jobs scheduled with malleability per submission day."""
    done = [j for j in jobs if j.end_time is not None]
    if not done:
        return {}
    base = origin if origin is not None else min(j.submit_time for j in done)
    counts: Dict[int, int] = {}
    for job in done:
        if job.scheduled_malleable:
            day = _day_of(job, base)
            counts[day] = counts.get(day, 0) + 1
    return dict(sorted(counts.items()))


def daily_series_table(
    static_jobs: Iterable[Job],
    sd_jobs: Iterable[Job],
    origin: float | None = None,
) -> List[Dict[str, float]]:
    """Rows combining both runs per day: the data behind Figure 7.

    Each row has ``day``, ``static_slowdown``, ``sd_slowdown`` and
    ``malleable_jobs``.  The day axis is aligned on one *shared* origin —
    the earliest submission among the completed jobs of *both* runs — so
    two runs whose earliest completed job differs (e.g. one run drops or
    never finishes the first job) still report the same calendar days on
    the same rows.  Pass ``origin`` explicitly to pin day 0 elsewhere.
    """
    static_done = [j for j in static_jobs if j.end_time is not None]
    sd_done = [j for j in sd_jobs if j.end_time is not None]
    if origin is None:
        submits = [j.submit_time for j in static_done] + [j.submit_time for j in sd_done]
        origin = min(submits) if submits else 0.0
    static = daily_slowdown(static_done, origin=origin)
    sd = daily_slowdown(sd_done, origin=origin)
    malleable = daily_malleable_counts(sd_done, origin=origin)
    days = sorted(set(static) | set(sd))
    rows: List[Dict[str, float]] = []
    for day in days:
        rows.append(
            {
                "day": day,
                "static_slowdown": static.get(day, math.nan),
                "sd_slowdown": sd.get(day, math.nan),
                "malleable_jobs": malleable.get(day, 0),
            }
        )
    return rows
