"""Energy accounting (the Figure 9 energy metric).

The paper reports the energy consumed to run the whole workload, as
measured by the system software of MareNostrum4, and shows a ~6% reduction
under SD-Policy driven by better node utilisation and a shorter makespan.

In the reproduction energy is integrated from a node power model.  The
default is the standard linear model

    P_node(u) = P_idle + (P_peak − P_idle) · u

with ``u`` the fraction of the node's CPUs doing useful work.  The real-run
emulation refines ``u`` with per-application CPU-utilisation factors
(:mod:`repro.realrun.apps`); the plain simulator uses assigned CPUs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.simulator.cluster import Cluster
from repro.simulator.job import Job


@dataclass
class LinearPowerModel:
    """Linear node power model, in watts.

    Default figures approximate a two-socket Xeon Platinum 8160 node
    (MareNostrum4): ~120 W idle, ~400 W at full load.  Absolute values only
    scale the energy numbers; the relative savings the paper reports depend
    on the idle/peak *ratio*, which is the realistic part of the model.
    """

    idle_watts: float = 120.0
    peak_watts: float = 400.0

    def __post_init__(self) -> None:
        if self.peak_watts < self.idle_watts:
            raise ValueError("peak_watts must be >= idle_watts")
        if self.idle_watts < 0:
            raise ValueError("idle_watts must be non-negative")

    def node_power(self, utilization: float) -> float:
        """Power of one node at the given utilisation (clamped to [0, 1])."""
        u = min(1.0, max(0.0, utilization))
        return self.idle_watts + (self.peak_watts - self.idle_watts) * u

    def power(self, cluster: Cluster) -> float:
        """Cluster-wide power used by the simulation driver's integrator."""
        util = cluster.used_cpus / cluster.total_cpus if cluster.total_cpus else 0.0
        return cluster.num_nodes * self.node_power(util)


def workload_energy(
    jobs: Iterable[Job],
    num_nodes: int,
    cpus_per_node: int,
    power_model: Optional[LinearPowerModel] = None,
    utilization_of: Optional[callable] = None,
) -> float:
    """Recompute a run's energy from the completed jobs' resource histories.

    This is an independent (post-hoc) estimate used to cross-check the
    driver's online integration and to compute energy for the real-run
    emulation, where a job's *effective* CPU utilisation depends on its
    application model (pass ``utilization_of(job) -> float`` to scale the
    assigned CPUs accordingly).

    Energy = idle power of all nodes over the makespan + the dynamic part
    integrated from every job's per-slot CPU assignment.
    """
    model = power_model or LinearPowerModel()
    done = [j for j in jobs if j.end_time is not None and j.start_time is not None]
    if not done:
        return 0.0
    first = min(j.submit_time for j in done)
    last = max(j.end_time for j in done)
    span = max(0.0, last - first)
    idle_energy = num_nodes * model.idle_watts * span
    per_cpu_dynamic = (model.peak_watts - model.idle_watts) / cpus_per_node
    dynamic_energy = 0.0
    for job in done:
        factor = 1.0 if utilization_of is None else max(0.0, min(1.0, utilization_of(job)))
        for slot in job.resource_history:
            duration = slot.duration
            if duration <= 0 or duration != duration or duration == float("inf"):
                continue
            dynamic_energy += per_cpu_dynamic * slot.total_cpus * duration * factor
    return idle_energy + dynamic_energy
