"""Job-category heatmaps (Figures 4, 5 and 6 of the paper).

The paper partitions the jobs of workload 4 into categories by requested
node count (power-of-two bins) and by runtime (hour/day bins), and shows,
per category, the *ratio* between the static backfill value and the
SD-Policy value of a metric (slowdown, runtime, wait time) — values above
1.0 mean SD-Policy improved the category.

:func:`category_heatmap` builds the per-category averages for one run;
:func:`heatmap_ratio` divides two grids cell by cell.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.simulator.job import Job

#: Default node-count bin upper edges (inclusive), paper-style powers of two.
DEFAULT_NODE_BINS: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 1 << 20)

#: Default runtime bin upper edges in seconds: ≤1h, 4h, 12h, 1d, 4d, ∞.
DEFAULT_RUNTIME_BINS: Sequence[float] = (
    3600.0,
    4 * 3600.0,
    12 * 3600.0,
    24 * 3600.0,
    4 * 24 * 3600.0,
    math.inf,
)


def _bin_label_nodes(edges: Sequence[int], idx: int) -> str:
    low = 1 if idx == 0 else edges[idx - 1] + 1
    high = edges[idx]
    if high >= (1 << 20):
        return f">{edges[idx - 1]} nodes"
    if low == high:
        return f"{high} nodes"
    return f"{low}-{high} nodes"


def _bin_label_runtime(edges: Sequence[float], idx: int) -> str:
    names = []
    for e in edges:
        if math.isinf(e):
            names.append("inf")
        elif e < 3600 * 24:
            names.append(f"{e / 3600:g}h")
        else:
            names.append(f"{e / 86400:g}d")
    low = "0" if idx == 0 else names[idx - 1]
    return f"{low}-{names[idx]}"


@dataclass
class CategoryGrid:
    """A (node bin × runtime bin) grid of per-category aggregates."""

    node_edges: Sequence[int]
    runtime_edges: Sequence[float]
    values: np.ndarray  # shape (len(node_edges), len(runtime_edges)); NaN = empty
    counts: np.ndarray  # same shape, number of jobs per cell
    metric: str = "slowdown"

    @property
    def node_labels(self) -> List[str]:
        """Human-readable labels of the node-count bins."""
        return [_bin_label_nodes(self.node_edges, i) for i in range(len(self.node_edges))]

    @property
    def runtime_labels(self) -> List[str]:
        """Human-readable labels of the runtime bins."""
        return [_bin_label_runtime(self.runtime_edges, i) for i in range(len(self.runtime_edges))]

    def cell(self, node_bin: int, runtime_bin: int) -> float:
        """Value of one cell (NaN when the cell has no jobs)."""
        return float(self.values[node_bin, runtime_bin])

    def to_rows(self) -> List[Dict[str, object]]:
        """Flat list of dict rows (used by the text renderer and reports)."""
        rows: List[Dict[str, object]] = []
        for i, nlabel in enumerate(self.node_labels):
            for j, rlabel in enumerate(self.runtime_labels):
                rows.append(
                    {
                        "nodes": nlabel,
                        "runtime": rlabel,
                        "value": float(self.values[i, j]),
                        "count": int(self.counts[i, j]),
                    }
                )
        return rows


def _bin_index(value: float, edges: Sequence[float]) -> int:
    for i, edge in enumerate(edges):
        if value <= edge:
            return i
    return len(edges) - 1


def category_heatmap(
    jobs: Iterable[Job],
    metric: str = "slowdown",
    node_edges: Sequence[int] = DEFAULT_NODE_BINS,
    runtime_edges: Sequence[float] = DEFAULT_RUNTIME_BINS,
    value_fn: Optional[Callable[[Job], float]] = None,
) -> CategoryGrid:
    """Average a per-job metric over (requested nodes × runtime) categories.

    ``metric`` may be ``"slowdown"``, ``"runtime"``, ``"wait"`` or
    ``"response"``; alternatively pass an explicit ``value_fn``.
    Categories are defined by the job's *requested* node count and its
    *static* runtime, so the same job lands in the same cell under every
    policy — a prerequisite for the ratio plots.
    """
    extractors: Dict[str, Callable[[Job], float]] = {
        "slowdown": lambda j: j.slowdown,
        "runtime": lambda j: j.actual_runtime,
        "wait": lambda j: j.wait_time,
        "response": lambda j: j.response_time,
    }
    if value_fn is None:
        if metric not in extractors:
            raise ValueError(f"unknown metric {metric!r}; expected one of {sorted(extractors)}")
        value_fn = extractors[metric]
    shape = (len(node_edges), len(runtime_edges))
    sums = np.zeros(shape)
    counts = np.zeros(shape, dtype=int)
    for job in jobs:
        if job.end_time is None:
            continue
        i = _bin_index(job.requested_nodes, node_edges)
        j = _bin_index(job.static_runtime, runtime_edges)
        value = value_fn(job)
        if value is None:
            continue
        sums[i, j] += value
        counts[i, j] += 1
    values = np.full(shape, np.nan)
    mask = counts > 0
    values[mask] = sums[mask] / counts[mask]
    return CategoryGrid(
        node_edges=node_edges,
        runtime_edges=runtime_edges,
        values=values,
        counts=counts,
        metric=metric,
    )


def heatmap_ratio(baseline: CategoryGrid, other: CategoryGrid) -> CategoryGrid:
    """Cell-wise ratio baseline / other (the paper's Figures 4-6 convention).

    Values above 1.0 mean ``other`` (SD-Policy) improved the category over
    ``baseline`` (static backfill).  Cells empty in either grid are NaN.
    """
    if baseline.values.shape != other.values.shape:
        raise ValueError("grids have different shapes")
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = baseline.values / other.values
    ratio[~np.isfinite(ratio)] = np.nan
    counts = np.minimum(baseline.counts, other.counts)
    return CategoryGrid(
        node_edges=baseline.node_edges,
        runtime_edges=baseline.runtime_edges,
        values=ratio,
        counts=counts,
        metric=f"{baseline.metric}_ratio",
    )
