"""Experiment harness: the code paths that regenerate each paper table/figure.

:mod:`repro.experiments.runner` runs one workload under one policy and
returns the metrics; :mod:`repro.experiments.sweep` fans independent runs
out over a process pool with an on-disk result cache;
:mod:`repro.experiments.paper` composes those runs into the exact sweeps
behind every table and figure of the paper's evaluation (see the experiment
index in DESIGN.md).  The benchmarks and the CLI are thin wrappers around
this package.
"""

from repro.experiments.paper import (
    FigureResult,
    figure_1_to_3_maxsd_sweep,
    figure_4_to_6_heatmaps,
    figure_7_daily_series,
    figure_8_runtime_models,
    figure_9_real_run,
    table_1_workloads,
    table_2_application_mix,
)
from repro.experiments.runner import PolicyRun, cluster_for, run_workload
from repro.experiments.sweep import (
    SweepEntry,
    SweepError,
    SweepResult,
    SweepRunner,
    SweepTask,
    fingerprint_workload,
    maxsd_sweep_tasks,
    task_cache_key,
)

__all__ = [
    "FigureResult",
    "PolicyRun",
    "SweepEntry",
    "SweepError",
    "SweepResult",
    "SweepRunner",
    "SweepTask",
    "cluster_for",
    "figure_1_to_3_maxsd_sweep",
    "figure_4_to_6_heatmaps",
    "figure_7_daily_series",
    "figure_8_runtime_models",
    "figure_9_real_run",
    "fingerprint_workload",
    "maxsd_sweep_tasks",
    "run_workload",
    "table_1_workloads",
    "table_2_application_mix",
    "task_cache_key",
]
