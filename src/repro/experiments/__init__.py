"""Experiment harness: the code paths that regenerate each paper table/figure.

:mod:`repro.experiments.runner` runs one workload under one policy and
returns the metrics; :mod:`repro.experiments.sweep` fans independent runs
out over a process pool with a result cache in a pluggable
:mod:`repro.store` backend (local directory, memory, or remote object
store);
:mod:`repro.experiments.scenario` turns a declarative spec (workload ref ×
policy × parameter grid, JSON round-trippable) into sweep tasks and reports;
:mod:`repro.experiments.paper` wraps the built-in scenarios behind every
table and figure of the paper's evaluation (see the experiment index in
DESIGN.md).  The benchmarks and the CLI are thin wrappers around this
package.
"""

from repro.experiments.executors import (
    Executor,
    ExecutorError,
    MergeExecutor,
    ProcessPoolExecutor,
    SerialExecutor,
    ShardedExecutor,
    parse_shard,
)
from repro.experiments.paper import (
    FigureResult,
    figure_1_to_3_maxsd_sweep,
    figure_4_to_6_heatmaps,
    figure_7_daily_series,
    figure_8_runtime_models,
    figure_9_real_run,
    table_1_workloads,
    table_2_application_mix,
)
from repro.experiments.runner import PolicyRun, cluster_for, run_workload
from repro.experiments.scenario import (
    BUILTIN_SCENARIOS,
    ScenarioCell,
    ScenarioError,
    ScenarioOutcome,
    ScenarioSpec,
    WorkloadRef,
    builtin_scenario,
    load_spec,
    render_report,
    run_scenario,
    save_spec,
)
from repro.experiments.sweep import (
    SweepEntry,
    SweepError,
    SweepResult,
    SweepRunner,
    SweepTask,
    fingerprint_workload,
    task_cache_key,
)

__all__ = [
    "BUILTIN_SCENARIOS",
    "Executor",
    "ExecutorError",
    "FigureResult",
    "MergeExecutor",
    "PolicyRun",
    "ProcessPoolExecutor",
    "SerialExecutor",
    "ShardedExecutor",
    "parse_shard",
    "ScenarioCell",
    "ScenarioError",
    "ScenarioOutcome",
    "ScenarioSpec",
    "SweepEntry",
    "SweepError",
    "SweepResult",
    "SweepRunner",
    "SweepTask",
    "WorkloadRef",
    "builtin_scenario",
    "cluster_for",
    "figure_1_to_3_maxsd_sweep",
    "figure_4_to_6_heatmaps",
    "figure_7_daily_series",
    "figure_8_runtime_models",
    "figure_9_real_run",
    "fingerprint_workload",
    "load_spec",
    "render_report",
    "run_scenario",
    "run_workload",
    "save_spec",
    "table_1_workloads",
    "table_2_application_mix",
    "task_cache_key",
]
