"""Parallel experiment sweeps.

Every figure and table of the paper is a sweep — MAX_SLOWDOWN values ×
workloads × runtime models — and each point is one independent
:func:`repro.experiments.runner.run_workload` call.  :class:`SweepRunner`
fans those calls out through a pluggable execution backend
(:mod:`repro.experiments.executors`) with

* a configurable worker count (``REPRO_SWEEP_WORKERS`` or the CPU count),
* deterministic per-task seeds, so serial, parallel and sharded execution
  produce bit-identical metrics,
* an optional result cache keyed by a content hash of the workload and the
  policy configuration, held in a pluggable :class:`repro.store.ResultStore`
  (a local directory, an in-memory store, or a remote S3-compatible object
  endpoint), so re-running a sweep is free on any machine sharing the store,
* sharded execution (``executor=ShardedExecutor(i, n)``) that runs one
  deterministic slice per invocation, records a resumable manifest and is
  merged back into a full result by ``executor=MergeExecutor()``,
* progress callbacks, and
* worker failures that surface the *original* traceback in the parent.

The scenario layer (:mod:`repro.experiments.scenario`) expands declarative
specs into task lists for this runner; the per-figure experiment functions
in :mod:`repro.experiments.paper` and the ``sweep``/``scenario`` CLI
subcommands all run through it.
"""

from __future__ import annotations

import hashlib
import json
import logging
import math
import pickle
import re
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.experiments.executors import (
    ExecutionPlan,
    Executor,
    ExecutorError,
    MergeExecutor,
    ProcessPoolExecutor,
    SerialExecutor,
    ShardedExecutor,
    SweepError,
    default_executor,
    resolve_worker_count,
)
from repro.experiments.runner import PolicyRun
from repro.store import (
    LocalFSStore,
    ResultStore,
    StoreError,
    blob_digest,
    default_cache_dir,
    resolve_store,
    unwrap_blob,
    wrap_blob,
)
from repro.workloads.job_record import Workload

_log = logging.getLogger(__name__)

__all__ = [
    "CACHE_FORMAT_VERSION",
    "CACHE_KEY_VERSION",
    "COMPATIBLE_CACHE_FORMATS",
    "ExecutionPlan",
    "Executor",
    "ExecutorError",
    "MergeExecutor",
    "ProcessPoolExecutor",
    "ResultStore",
    "SerialExecutor",
    "ShardedExecutor",
    "StoreError",
    "SweepEntry",
    "SweepError",
    "SweepResult",
    "SweepRunner",
    "SweepTask",
    "default_cache_dir",
    "fingerprint_workload",
    "task_cache_key",
]

#: Version written into new cache payloads.  Bump when the payload layout
#: changes.  v2: non-finite kwarg floats canonicalised.  v3:
#: SimulationResult gained first_submit/completed_jobs fields and
#: compute_metrics is anchored at the run-level first submit.  v4:
#: PolicyRun gained a ``records`` field (always pickled as ``None`` — the
#: analytics records are published as their own blob, so the run payload
#: itself is unchanged and v3 blobs stay fully readable).  v5: PolicyRun
#: gained ``trace`` (always pickled as ``None`` — traces are published as
#: their own blob, like records) and ``phases`` (populated whether or not
#: tracing is on, so a cached blob is byte-identical either way).
CACHE_FORMAT_VERSION = 5

#: Payload versions `_cache_load` accepts.  v3/v4 runs predate the
#: analytics/telemetry layers but deserialize into a current ``PolicyRun``
#: unchanged (the new ``records``/``trace``/``phases`` fields are absent
#: from old pickles and read back via ``getattr`` defaults).
COMPATIBLE_CACHE_FORMATS = (3, 4, 5)

#: Version folded into :func:`task_cache_key`.  Kept at 3 through the
#: v4/v5 payload bumps *on purpose*: the key encoding did not change, so
#: sweeps keep hitting cache entries written by pre-analytics/pre-telemetry
#: versions.  Bump only when the key inputs themselves change meaning.
CACHE_KEY_VERSION = 3

#: Declared key layout of the pickled cache payload ``_cache_store``
#: publishes.  ``repro.devtools.formats`` fingerprints this into
#: ``formats.lock``: changing the payload shape without bumping
#: ``CACHE_FORMAT_VERSION`` fails CI.
CACHE_PAYLOAD_FIELDS = (
    "format",
    "key",
    "policy",
    "seed",
    "kwargs",
    "workload",
    "run",
)


@dataclass
class SweepTask:
    """One point of a sweep: a workload simulated under one configuration.

    ``kwargs`` are forwarded verbatim to
    :func:`repro.experiments.runner.run_workload` (runtime model, malleable
    fraction, policy parameters such as ``max_slowdown`` …).  The ``seed`` is
    explicit so every task is reproducible no matter which worker runs it;
    when ``None`` it is derived deterministically from the task key.
    """

    workload: Workload
    policy: str = "static_backfill"
    key: Optional[str] = None
    label: Optional[str] = None
    seed: Optional[int] = None
    kwargs: Dict[str, Any] = field(default_factory=dict)
    #: Capture per-job records for this task (set by the runner's
    #: ``analytics`` flag).  Deliberately *not* part of the cache key: the
    #: simulated run is identical either way, so an analytics sweep reuses
    #: plain cached runs (records are only published for executed tasks).
    analytics: bool = False
    #: Record a scheduler decision trace for this task (set by the runner's
    #: ``trace`` flag).  Like ``analytics``, *not* part of the cache key:
    #: traces are published for executed tasks only.
    trace: bool = False

    def resolved_key(self) -> str:
        return self.key or self.label or self.policy

    def resolved_seed(self) -> int:
        if self.seed is not None:
            return int(self.seed)
        digest = hashlib.sha256(self.resolved_key().encode("utf-8")).digest()
        return int.from_bytes(digest[:4], "big") % (2**31)


@dataclass
class SweepEntry:
    """The outcome of one sweep task."""

    key: str
    run: PolicyRun
    from_cache: bool
    wall_clock_seconds: float
    #: Phase-timer breakdown of the work this invocation actually did for
    #: the task (``simulate`` / ``metrics`` / ``serialize`` / ``store_put``
    #: seconds).  Empty for cache hits — no work was performed here; the
    #: executing run's own timings stay available as ``run.phases``.
    phases: Dict[str, float] = field(default_factory=dict)


@dataclass
class SweepResult:
    """All completed entries of one sweep, in task order.

    ``complete`` is ``False`` for a sharded invocation that deliberately
    executed only its own slice — ``entries`` then holds the tasks finished
    so far (this shard's plus any served from the shared cache) and
    ``total_tasks`` the size of the full sweep.
    """

    entries: List[SweepEntry]
    total_wall_clock_seconds: float
    workers: int
    complete: bool = True
    total_tasks: Optional[int] = None
    #: Corrupt cache entries evicted (quarantined) — this invocation's cache
    #: probe plus, for a merge, the counts every shard manifest reported.
    cache_corruptions: int = 0

    def __post_init__(self) -> None:
        if self.total_tasks is None:
            self.total_tasks = len(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[SweepEntry]:
        return iter(self.entries)

    def __getitem__(self, key: str) -> PolicyRun:
        for entry in self.entries:
            if entry.key == key:
                return entry.run
        raise KeyError(key)

    @property
    def runs(self) -> Dict[str, PolicyRun]:
        """Mapping of task key to its :class:`PolicyRun`."""
        return {entry.key: entry.run for entry in self.entries}

    @property
    def cache_hits(self) -> int:
        """Number of entries served from the on-disk cache."""
        return sum(1 for entry in self.entries if entry.from_cache)


# --------------------------------------------------------------------- #
# Cache keys
# --------------------------------------------------------------------- #
def fingerprint_workload(workload: Workload) -> str:
    """Content hash of a workload: system geometry plus every job record."""
    h = hashlib.sha256()
    h.update(
        f"{workload.name}|{workload.system_nodes}|{workload.cpus_per_node}|".encode()
    )
    for r in workload.records:
        h.update(
            (
                f"{r.job_id},{r.submit_time!r},{r.run_time!r},{r.requested_time!r},"
                f"{r.requested_procs},{r.user_id},{r.group_id},{r.application}\n"
            ).encode()
        )
    return h.hexdigest()


_ADDRESS_RE = re.compile(r" at 0x[0-9a-fA-F]+")


def _canonical_value(obj: Any) -> Any:
    """Stable JSON stand-in for a non-JSON kwarg value.

    Objects are rendered as their class plus their (sorted) instance state,
    so two identically-configured model instances produce the same cache key
    and two differently-configured ones do not; memory addresses from
    default reprs are stripped because they change every run.
    """
    state = getattr(obj, "__dict__", None)
    if state:
        return {
            "__class__": f"{type(obj).__module__}.{type(obj).__qualname__}",
            "state": {k: _ADDRESS_RE.sub("", repr(v)) for k, v in sorted(state.items())},
        }
    return _ADDRESS_RE.sub("", repr(obj))


def _canonical_nonfinite(value: Any) -> Any:
    """Replace non-finite floats with stable tokens, recursively.

    Bare ``json.dumps`` would emit the non-standard ``Infinity``/``NaN``
    tokens (and NaN compares unequal even to itself), which strict parsers
    reject and which can diverge from the scenario layer's explicit ``inf``
    encoding — splitting cache keys for the same configuration.  The tokens
    here are namespaced so they cannot collide with a legitimate string
    parameter value like ``"inf"``.
    """
    if isinstance(value, float):
        if math.isnan(value):
            return "__float:nan__"
        if math.isinf(value):
            return "__float:inf__" if value > 0 else "__float:-inf__"
        return value
    if isinstance(value, dict):
        return {k: _canonical_nonfinite(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical_nonfinite(v) for v in value]
    return value


def _canonical_kwargs(kwargs: Mapping[str, Any]) -> str:
    """Stable text form of the run kwargs (handles inf/NaN, model objects…)."""
    return json.dumps(
        _canonical_nonfinite(dict(kwargs)),
        sort_keys=True,
        default=_canonical_value,
        allow_nan=False,
    )


def task_cache_key(task: SweepTask) -> str:
    """Cache key of a task: workload content + full run configuration.

    The package version is part of the key so a released behaviour change
    invalidates old entries; local (unreleased) simulator edits are *not*
    detected — delete the cache directory after hacking on the scheduler.
    """
    import repro

    h = hashlib.sha256()
    h.update(
        f"v{CACHE_KEY_VERSION}|repro{getattr(repro, '__version__', '0')}|".encode()
    )
    h.update(fingerprint_workload(task.workload).encode())
    h.update(
        (
            f"|{task.policy}|{task.label}|{task.resolved_seed()}|"
            f"{_canonical_kwargs(task.kwargs)}"
        ).encode()
    )
    return h.hexdigest()


# --------------------------------------------------------------------- #
# The runner
# --------------------------------------------------------------------- #
class SweepRunner:
    """Run a batch of :class:`SweepTask` points through an execution backend.

    Parameters
    ----------
    max_workers:
        Process count.  ``None`` reads ``REPRO_SWEEP_WORKERS``; unset, it
        defaults to ``os.cpu_count()`` on Linux (where the pool forks and a
        library call stays safe in any script) and to ``1`` on spawn
        platforms (macOS/Windows), where a process pool inside a library
        call would re-import unguarded caller scripts — opt in explicitly
        there.  ``1`` runs everything in-process (no pool).  An explicit
        value always beats the environment variable.
    cache_dir:
        Back-compat spelling for a local-directory result store.  ``None``
        disables caching; the string ``"auto"`` selects
        :func:`repro.store.default_cache_dir`.
    progress:
        Optional callback ``progress(done, total, entry)`` invoked after
        every completed task (cache hits included).
    executor:
        Execution backend override.  ``None`` picks
        :class:`repro.experiments.executors.SerialExecutor` or
        :class:`~repro.experiments.executors.ProcessPoolExecutor` from
        ``max_workers``; pass a
        :class:`~repro.experiments.executors.ShardedExecutor` to run one
        shard of the sweep, or a
        :class:`~repro.experiments.executors.MergeExecutor` to assemble the
        full result from completed shard manifests.
    store:
        Result-store backend: a :class:`repro.store.ResultStore` instance
        or a URL (``file://…``, ``memory://…``, ``s3+http(s)://…``).  An
        explicit ``store`` beats ``cache_dir``; with neither set the
        ``REPRO_STORE_URL`` environment variable applies, and with nothing
        configured caching is disabled.
    analytics:
        Capture per-job records for every *executed* task and publish them
        to the store next to the cached run (see :mod:`repro.analytics`).
        Requires a store; cache hits are served as usual without
        re-publishing records.
    trace:
        Record a scheduler decision trace for every *executed* task and
        publish it to the store under ``<cache_key>-trace`` (see
        :mod:`repro.telemetry.trace`).  Requires a store; cache hits are
        served as usual without re-publishing traces.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        cache_dir: Optional[Union[str, Path]] = None,
        progress: Optional[Callable[[int, int, SweepEntry], None]] = None,
        executor: Optional[Executor] = None,
        store: Optional[Union[str, ResultStore]] = None,
        analytics: bool = False,
        trace: bool = False,
    ) -> None:
        self.max_workers = resolve_worker_count(max_workers)
        self.store = resolve_store(store, cache_dir)
        self.progress = progress
        self.executor = executor
        if analytics and self.store is None:
            raise ValueError(
                "analytics=True needs a result store to publish records "
                "(pass store=… or cache_dir=…)"
            )
        self.analytics = analytics
        if trace and self.store is None:
            raise ValueError(
                "trace=True needs a result store to publish decision traces "
                "(pass store=… or cache_dir=…)"
            )
        self.trace = trace

    @property
    def cache_dir(self) -> Optional[Path]:
        """Root directory of a local-FS store (``None`` for other backends)."""
        return self.store.root if isinstance(self.store, LocalFSStore) else None

    # ------------------------------------------------------------------ #
    # Cache plumbing (all blob/manifest I/O goes through ``self.store``)
    # ------------------------------------------------------------------ #
    def _cache_key(self, task: SweepTask) -> Optional[str]:
        if self.store is None:
            return None
        return task_cache_key(task)

    def _cache_path(self, task: SweepTask) -> Optional[Path]:
        """Local blob path of a task (LocalFS stores only; tests/devtools)."""
        if isinstance(self.store, LocalFSStore):
            return self.store.blob_path(task_cache_key(task))
        return None

    def _cache_load(
        self, key: Optional[str]
    ) -> Tuple[Optional[PolicyRun], bool, Optional[str]]:
        """Load one cache entry; returns ``(run, was_corrupt, digest)``.

        Blobs written by this runner carry an integrity envelope
        (:func:`repro.store.wrap_blob`) whose SHA-256 content digest is
        verified here on every read; pre-envelope blobs still load and
        their digest is computed over the raw bytes.  A corrupt blob
        (torn write, truncation, digest mismatch, unpicklable garbage) is
        quarantined in the store so it is never retried — one bad entry
        must not poison every subsequent (sharded) run — and reported
        distinctly from an ordinary miss.  Transport failures
        (:class:`repro.store.StoreError`) propagate: an unreachable store
        is not a cache miss.
        """
        if key is None or self.store is None:
            return None, False, None
        data = self.store.get(key)
        if data is None:
            return None, False, None
        try:
            payload_bytes, digest = unwrap_blob(data)
            if digest is None:  # pre-envelope blob: digest of the raw bytes
                digest = blob_digest(payload_bytes)
            # repro: allow[store-pickle] the cache codec itself — the bytes
            # only ever travel inside ResultStore integrity envelopes
            payload = pickle.loads(payload_bytes)
            if not isinstance(payload, dict):
                raise TypeError(f"cache payload is {type(payload).__name__}, not dict")
            if payload.get("format") not in COMPATIBLE_CACHE_FORMATS:
                return None, False, None  # stale but well-formed: an ordinary miss
            return payload["run"], False, digest
        except StoreError:
            raise
        # repro: allow[exc-broad] any decode failure here means a corrupt
        # blob (torn write, bit rot, unpicklable garbage) — quarantined
        # below and reported distinctly as a corruption, never re-raised
        except Exception:
            _log.warning(
                "corrupt cache blob %s… in %s; quarantining and re-running",
                key[:24],
                self.store.url,
            )
            try:
                self.store.quarantine(key)
            # repro: allow[exc-swallow] quarantine is best-effort — the
            # corruption is already counted and this load stays a miss
            except StoreError:
                pass
            return None, True, None

    def _cache_store(
        self, key: Optional[str], task: SweepTask, run: PolicyRun
    ) -> Tuple[Optional[str], Dict[str, float]]:
        """Publish one cache entry; ``(blob digest, store-phase timings)``."""
        if key is None or self.store is None:
            return None, {}
        records = getattr(run, "records", None)
        recorder = getattr(run, "trace", None)
        if records is not None or recorder is not None:
            # Records and traces are published as their own blobs (below);
            # the run payload is pickled without them so a cached run blob
            # stays byte-identical whether or not analytics/trace was on.
            run = replace(run, records=None, trace=None)
        payload = {
            "format": CACHE_FORMAT_VERSION,
            "key": task.resolved_key(),
            "policy": task.policy,
            "seed": task.resolved_seed(),
            "kwargs": _canonical_kwargs(task.kwargs),
            "workload": task.workload.name,
            "run": run,
        }
        phases: Dict[str, float] = {}
        # The envelope records a SHA-256 over the pickled payload, so a
        # truncated or bit-rotted blob is detected on read (`store verify`
        # re-checks at rest); stores publish atomically, so concurrent
        # sweeps sharing one backend never observe a torn entry.  Readers
        # predating the envelope quarantine enveloped blobs as corrupt —
        # clients sharing a store must run the same version (the shard
        # manifest format bump enforces this for sharded fan-outs).
        serialize_started = time.perf_counter()
        enveloped, digest = wrap_blob(
            # repro: allow[store-pickle] the cache codec itself — wrapped in
            # the integrity envelope and published through ResultStore
            pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        )
        phases["serialize"] = time.perf_counter() - serialize_started
        put_started = time.perf_counter()
        self.store.put(key, enveloped)
        phases["store_put"] = time.perf_counter() - put_started
        if records is not None:
            from repro.analytics.store import publish_run_records

            records.meta.setdefault("task_key", task.resolved_key())
            records.meta.setdefault("kwargs", _canonical_kwargs(task.kwargs))
            publish_run_records(self.store, key, records, run_digest=digest)
        if recorder is not None:
            from repro.telemetry.trace import publish_trace

            publish_trace(
                self.store,
                key,
                recorder,
                run_digest=digest,
                phases={**(getattr(run, "phases", None) or {}), **phases},
            )
        return digest, phases

    # ------------------------------------------------------------------ #
    def run(self, tasks: Sequence[SweepTask]) -> SweepResult:
        """Execute every task and return their results in task order.

        With a partial executor (a shard), only the tasks finished so far
        are returned and ``result.complete`` is ``False``; any other
        executor must finish the whole plan.
        """
        tasks = list(tasks)
        if self.analytics:
            tasks = [
                task if task.analytics else replace(task, analytics=True)
                for task in tasks
            ]
        if self.trace:
            tasks = [
                task if getattr(task, "trace", False) else replace(task, trace=True)
                for task in tasks
            ]
        keys = [task.resolved_key() for task in tasks]
        if len(set(keys)) != len(keys):
            dupes = sorted({k for k in keys if keys.count(k) > 1})
            raise ValueError(f"duplicate sweep task keys: {dupes}")

        started = time.perf_counter()
        total = len(tasks)
        done = 0
        entries: List[Optional[SweepEntry]] = [None] * total
        misses: List[int] = []
        corrupt_indices: List[int] = []
        shard_corruptions: List[int] = [0]
        cache_keys = [self._cache_key(task) for task in tasks]
        digests: Dict[int, Optional[str]] = {}

        for index, task in enumerate(tasks):
            cached, was_corrupt, digest = self._cache_load(cache_keys[index])
            if was_corrupt:
                corrupt_indices.append(index)
            if cached is not None:
                _log.debug("cache hit for task %s", keys[index])
                digests[index] = digest
                entries[index] = SweepEntry(
                    key=keys[index], run=cached, from_cache=True, wall_clock_seconds=0.0
                )
                done += 1
                if self.progress is not None:
                    self.progress(done, total, entries[index])
            else:
                misses.append(index)

        workers = min(self.max_workers, max(1, len(misses)))

        def complete(index: int, run: PolicyRun, elapsed: float) -> None:
            nonlocal done
            digest, store_phases = self._cache_store(
                cache_keys[index], tasks[index], run
            )
            digests[index] = digest
            phases = dict(getattr(run, "phases", None) or {})
            phases.update(store_phases)
            entry = SweepEntry(
                key=keys[index],
                run=run,
                from_cache=False,
                wall_clock_seconds=elapsed,
                phases=phases,
            )
            entries[index] = entry
            done += 1
            if self.progress is not None:
                self.progress(done, total, entry)

        def note_corruptions(count: int) -> None:
            shard_corruptions[0] += count

        executor = self.executor or default_executor(self.max_workers, len(misses))
        executor.execute(
            ExecutionPlan(
                tasks=tasks,
                keys=keys,
                cache_keys=cache_keys,
                store=self.store,
                pending=misses,
                complete=complete,
                max_workers=self.max_workers,
                corrupt=corrupt_indices,
                note_corruptions=note_corruptions,
                digests=digests,
            )
        )

        finished = [entry for entry in entries if entry is not None]
        if len(finished) != total and not executor.partial:
            unfinished = [keys[i] for i, e in enumerate(entries) if e is None]
            raise ExecutorError(
                f"executor {type(executor).__name__} left task(s) unfinished: "
                f"{unfinished}"
            )
        return SweepResult(
            entries=finished,
            total_wall_clock_seconds=time.perf_counter() - started,
            workers=workers,
            complete=len(finished) == total,
            total_tasks=total,
            cache_corruptions=len(corrupt_indices) + shard_corruptions[0],
        )
