"""Parallel experiment sweeps.

Every figure and table of the paper is a sweep — MAX_SLOWDOWN values ×
workloads × runtime models — and each point is one independent
:func:`repro.experiments.runner.run_workload` call.  :class:`SweepRunner`
fans those calls out over a process pool with

* a configurable worker count (``REPRO_SWEEP_WORKERS`` or the CPU count),
* deterministic per-task seeds, so serial and parallel execution produce
  bit-identical metrics,
* an optional on-disk result cache keyed by a content hash of the workload
  and the policy configuration, so re-running a sweep is free,
* progress callbacks, and
* worker failures that surface the *original* traceback in the parent.

The scenario layer (:mod:`repro.experiments.scenario`) expands declarative
specs into task lists for this runner; the per-figure experiment functions
in :mod:`repro.experiments.paper` and the ``sweep``/``scenario`` CLI
subcommands all run through it.
"""

from __future__ import annotations

import hashlib
import json
import math
import multiprocessing
import os
import pickle
import tempfile
import time
import traceback
import re
import sys
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.experiments.runner import PolicyRun, run_workload
from repro.workloads.job_record import Workload

#: Bump when the cached payload layout changes; old entries are then misses.
CACHE_FORMAT_VERSION = 1


class SweepError(RuntimeError):
    """A sweep task failed in a worker.

    The worker's original traceback is preserved in :attr:`worker_traceback`
    and included in the exception message, so failures in a process pool are
    as debuggable as failures in the parent.
    """

    def __init__(self, key: str, message: str, worker_traceback: str = "") -> None:
        self.key = key
        self.worker_traceback = worker_traceback
        detail = f"sweep task {key!r} failed: {message}"
        if worker_traceback:
            detail += f"\n--- worker traceback ---\n{worker_traceback}"
        super().__init__(detail)


@dataclass
class SweepTask:
    """One point of a sweep: a workload simulated under one configuration.

    ``kwargs`` are forwarded verbatim to
    :func:`repro.experiments.runner.run_workload` (runtime model, malleable
    fraction, policy parameters such as ``max_slowdown`` …).  The ``seed`` is
    explicit so every task is reproducible no matter which worker runs it;
    when ``None`` it is derived deterministically from the task key.
    """

    workload: Workload
    policy: str = "static_backfill"
    key: Optional[str] = None
    label: Optional[str] = None
    seed: Optional[int] = None
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def resolved_key(self) -> str:
        return self.key or self.label or self.policy

    def resolved_seed(self) -> int:
        if self.seed is not None:
            return int(self.seed)
        digest = hashlib.sha256(self.resolved_key().encode("utf-8")).digest()
        return int.from_bytes(digest[:4], "big") % (2**31)


@dataclass
class SweepEntry:
    """The outcome of one sweep task."""

    key: str
    run: PolicyRun
    from_cache: bool
    wall_clock_seconds: float


@dataclass
class SweepResult:
    """All entries of one sweep, in task order."""

    entries: List[SweepEntry]
    total_wall_clock_seconds: float
    workers: int

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[SweepEntry]:
        return iter(self.entries)

    def __getitem__(self, key: str) -> PolicyRun:
        for entry in self.entries:
            if entry.key == key:
                return entry.run
        raise KeyError(key)

    @property
    def runs(self) -> Dict[str, PolicyRun]:
        """Mapping of task key to its :class:`PolicyRun`."""
        return {entry.key: entry.run for entry in self.entries}

    @property
    def cache_hits(self) -> int:
        """Number of entries served from the on-disk cache."""
        return sum(1 for entry in self.entries if entry.from_cache)


# --------------------------------------------------------------------- #
# Cache keys
# --------------------------------------------------------------------- #
def fingerprint_workload(workload: Workload) -> str:
    """Content hash of a workload: system geometry plus every job record."""
    h = hashlib.sha256()
    h.update(
        f"{workload.name}|{workload.system_nodes}|{workload.cpus_per_node}|".encode()
    )
    for r in workload.records:
        h.update(
            (
                f"{r.job_id},{r.submit_time!r},{r.run_time!r},{r.requested_time!r},"
                f"{r.requested_procs},{r.user_id},{r.group_id},{r.application}\n"
            ).encode()
        )
    return h.hexdigest()


_ADDRESS_RE = re.compile(r" at 0x[0-9a-fA-F]+")


def _canonical_value(obj: Any) -> Any:
    """Stable JSON stand-in for a non-JSON kwarg value.

    Objects are rendered as their class plus their (sorted) instance state,
    so two identically-configured model instances produce the same cache key
    and two differently-configured ones do not; memory addresses from
    default reprs are stripped because they change every run.
    """
    state = getattr(obj, "__dict__", None)
    if state:
        return {
            "__class__": f"{type(obj).__module__}.{type(obj).__qualname__}",
            "state": {k: _ADDRESS_RE.sub("", repr(v)) for k, v in sorted(state.items())},
        }
    return _ADDRESS_RE.sub("", repr(obj))


def _canonical_kwargs(kwargs: Mapping[str, Any]) -> str:
    """Stable text form of the run kwargs (handles inf, model objects, …)."""
    return json.dumps(kwargs, sort_keys=True, default=_canonical_value)


def task_cache_key(task: SweepTask) -> str:
    """Cache key of a task: workload content + full run configuration.

    The package version is part of the key so a released behaviour change
    invalidates old entries; local (unreleased) simulator edits are *not*
    detected — delete the cache directory after hacking on the scheduler.
    """
    import repro

    h = hashlib.sha256()
    h.update(
        f"v{CACHE_FORMAT_VERSION}|repro{getattr(repro, '__version__', '0')}|".encode()
    )
    h.update(fingerprint_workload(task.workload).encode())
    h.update(
        (
            f"|{task.policy}|{task.label}|{task.resolved_seed()}|"
            f"{_canonical_kwargs(task.kwargs)}"
        ).encode()
    )
    return h.hexdigest()


def default_cache_dir() -> Path:
    """Default on-disk cache location (``REPRO_SWEEP_CACHE_DIR`` overrides)."""
    env = os.environ.get("REPRO_SWEEP_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro" / "sweeps"


# --------------------------------------------------------------------- #
# Worker entry points (module level: must be picklable)
# --------------------------------------------------------------------- #
def _execute_task(task: SweepTask) -> PolicyRun:
    return run_workload(
        task.workload,
        task.policy,
        label=task.label,
        seed=task.resolved_seed(),
        **task.kwargs,
    )


def _worker(indexed_task: Tuple[int, SweepTask]) -> Tuple[int, str, Any]:
    index, task = indexed_task
    t0 = time.perf_counter()
    try:
        run = _execute_task(task)
        return index, "ok", (run, time.perf_counter() - t0)
    except Exception as exc:  # noqa: BLE001 - must cross the process boundary
        return index, "error", (f"{type(exc).__name__}: {exc}", traceback.format_exc())


# --------------------------------------------------------------------- #
# The runner
# --------------------------------------------------------------------- #
class SweepRunner:
    """Run a batch of :class:`SweepTask` points, in parallel when possible.

    Parameters
    ----------
    max_workers:
        Process count.  ``None`` reads ``REPRO_SWEEP_WORKERS``; unset, it
        defaults to ``os.cpu_count()`` on Linux (where the pool forks and a
        library call stays safe in any script) and to ``1`` on spawn
        platforms (macOS/Windows), where a process pool inside a library
        call would re-import unguarded caller scripts — opt in explicitly
        there.  ``1`` runs everything in-process (no pool).
    cache_dir:
        Directory for the on-disk result cache.  ``None`` disables caching;
        the string ``"auto"`` selects :func:`default_cache_dir`.
    progress:
        Optional callback ``progress(done, total, entry)`` invoked after
        every completed task (cache hits included).
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        cache_dir: Optional[Union[str, Path]] = None,
        progress: Optional[Callable[[int, int, SweepEntry], None]] = None,
    ) -> None:
        if max_workers is None:
            env = os.environ.get("REPRO_SWEEP_WORKERS")
            if env:
                max_workers = int(env)
            elif sys.platform == "linux":
                max_workers = os.cpu_count() or 1
            else:
                max_workers = 1
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers
        if cache_dir == "auto":
            cache_dir = default_cache_dir()
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.progress = progress

    # ------------------------------------------------------------------ #
    # Cache plumbing
    # ------------------------------------------------------------------ #
    def _cache_path(self, task: SweepTask) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{task_cache_key(task)}.pkl"

    def _cache_load(self, path: Optional[Path]) -> Optional[PolicyRun]:
        if path is None or not path.exists():
            return None
        try:
            with path.open("rb") as fh:
                payload = pickle.load(fh)
            if payload.get("format") != CACHE_FORMAT_VERSION:
                return None
            return payload["run"]
        except Exception:  # corrupt or incompatible entry: treat as a miss
            return None

    def _cache_store(self, path: Optional[Path], task: SweepTask, run: PolicyRun) -> None:
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "format": CACHE_FORMAT_VERSION,
            "key": task.resolved_key(),
            "policy": task.policy,
            "seed": task.resolved_seed(),
            "kwargs": _canonical_kwargs(task.kwargs),
            "workload": task.workload.name,
            "run": run,
        }
        # Atomic publish so concurrent sweeps never observe a torn entry.
        fd, tmp_name = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------ #
    def run(self, tasks: Sequence[SweepTask]) -> SweepResult:
        """Execute every task and return their results in task order."""
        tasks = list(tasks)
        keys = [task.resolved_key() for task in tasks]
        if len(set(keys)) != len(keys):
            dupes = sorted({k for k in keys if keys.count(k) > 1})
            raise ValueError(f"duplicate sweep task keys: {dupes}")

        started = time.perf_counter()
        total = len(tasks)
        done = 0
        entries: List[Optional[SweepEntry]] = [None] * total
        misses: List[int] = []

        for index, task in enumerate(tasks):
            cached = self._cache_load(self._cache_path(task))
            if cached is not None:
                entries[index] = SweepEntry(
                    key=keys[index], run=cached, from_cache=True, wall_clock_seconds=0.0
                )
                done += 1
                if self.progress is not None:
                    self.progress(done, total, entries[index])
            else:
                misses.append(index)

        workers = min(self.max_workers, max(1, len(misses)))
        if misses:
            if workers == 1:
                self._run_serial(tasks, keys, entries, misses, total, done)
            else:
                self._run_parallel(tasks, keys, entries, misses, total, done, workers)

        finished = [entry for entry in entries if entry is not None]
        assert len(finished) == total
        return SweepResult(
            entries=finished,
            total_wall_clock_seconds=time.perf_counter() - started,
            workers=workers,
        )

    # ------------------------------------------------------------------ #
    def _finish(
        self,
        tasks: Sequence[SweepTask],
        keys: Sequence[str],
        entries: List[Optional[SweepEntry]],
        index: int,
        run: PolicyRun,
        elapsed: float,
    ) -> SweepEntry:
        self._cache_store(self._cache_path(tasks[index]), tasks[index], run)
        entry = SweepEntry(
            key=keys[index], run=run, from_cache=False, wall_clock_seconds=elapsed
        )
        entries[index] = entry
        return entry

    def _run_serial(
        self,
        tasks: Sequence[SweepTask],
        keys: Sequence[str],
        entries: List[Optional[SweepEntry]],
        misses: Sequence[int],
        total: int,
        done: int,
    ) -> None:
        for index in misses:
            t0 = time.perf_counter()
            try:
                run = _execute_task(tasks[index])
            except Exception as exc:
                raise SweepError(
                    keys[index], f"{type(exc).__name__}: {exc}", traceback.format_exc()
                ) from exc
            entry = self._finish(tasks, keys, entries, index, run, time.perf_counter() - t0)
            done += 1
            if self.progress is not None:
                self.progress(done, total, entry)

    def _run_parallel(
        self,
        tasks: Sequence[SweepTask],
        keys: Sequence[str],
        entries: List[Optional[SweepEntry]],
        misses: Sequence[int],
        total: int,
        done: int,
        workers: int,
    ) -> None:
        # Fork shares the already-built workload objects cheaply, but is only
        # safe on Linux (macOS frameworks may abort in forked children); use
        # the platform default start method everywhere else.
        if sys.platform == "linux":
            context = multiprocessing.get_context("fork")
        else:
            context = multiprocessing.get_context()
        with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
            futures = {
                pool.submit(_worker, (index, tasks[index])): index for index in misses
            }
            pending = set(futures)
            while pending:
                # _worker never raises, so wait for completions one batch at
                # a time: progress streams and failures cancel the remainder
                # as soon as they are observed.
                finished, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in finished:
                    index = futures[future]
                    exc = future.exception()
                    if exc is not None:
                        # Pool infrastructure failure (e.g. a killed worker).
                        pool.shutdown(cancel_futures=True)
                        raise SweepError(keys[index], f"{type(exc).__name__}: {exc}")
                    got_index, status, payload = future.result()
                    if status == "error":
                        message, worker_tb = payload
                        pool.shutdown(cancel_futures=True)
                        raise SweepError(keys[got_index], message, worker_tb)
                    run, elapsed = payload
                    entry = self._finish(tasks, keys, entries, got_index, run, elapsed)
                    done += 1
                    if self.progress is not None:
                        self.progress(done, total, entry)
