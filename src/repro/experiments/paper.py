"""Per-table / per-figure experiment definitions.

Every public function regenerates the data behind one table or figure of the
paper's evaluation (Section 4), at a configurable scale.  The returned
:class:`FigureResult` carries both the raw data (for programmatic checks in
the benchmarks/tests) and a rendered text version (for humans comparing
against the paper).

Each experiment is a declarative :class:`repro.experiments.scenario.ScenarioSpec`
executed through the parallel :class:`repro.experiments.sweep.SweepRunner`
(Table 1 builds its tasks directly); nothing here runs simulations in a
hand-rolled serial loop.  The experiment ↔ module mapping is documented in
DESIGN.md; the measured values and their comparison with the paper are
recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.analysis.tables import format_table
from repro.experiments.runner import PolicyRun
from repro.experiments.scenario import (
    ScenarioSpec,
    WorkloadRef,
    builtin_scenario,
    realrun_improvements,
    render_report,
    report_figures_1_to_3,
    scenario_daily_rows,
    scenario_heatmaps,
)
from repro.experiments.sweep import SweepResult, SweepRunner, SweepTask
from repro.metrics.aggregates import WorkloadMetrics
from repro.workloads.job_record import Workload
from repro.workloads.presets import PAPER_WORKLOADS, build_workload

#: The MAX_SLOWDOWN settings swept in Figures 1-3.
MAXSD_SETTINGS: Dict[str, Union[float, str]] = {
    "MAXSD 5": 5.0,
    "MAXSD 10": 10.0,
    "MAXSD 50": 50.0,
    "MAXSD inf": math.inf,
    "DynAVGSD": "dynamic",
}


@dataclass
class FigureResult:
    """Regenerated data for one table or figure."""

    figure: str
    description: str
    data: Dict[str, object] = field(default_factory=dict)
    text: str = ""

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text or f"<{self.figure}>"

    @property
    def complete(self) -> bool:
        """``False`` when a sharded invocation ran only its task slice."""
        return bool(self.data.get("complete", True))


def _shard_partial_result(figure: str, sweep: SweepResult) -> FigureResult:
    """Progress stub returned when a sharded run leaves tasks unfinished.

    The report cannot be rendered until every shard has run; re-running the
    same command without ``--shard`` (same cache dir) — or ``sweep merge`` —
    assembles the full result from the cache and renders it then.
    """
    done, total = len(sweep), sweep.total_tasks
    return FigureResult(
        figure=figure,
        description="Partial sharded execution",
        data={"complete": False, "tasks_done": done, "tasks_total": total},
        text=(
            f"[{figure}] shard run finished: {done}/{total} sweep tasks complete.\n"
            "Run the remaining shards with the same cache dir, then re-run "
            "without --shard (or use `sweep merge`) to render the report."
        ),
    )


# --------------------------------------------------------------------- #
# Table 1
# --------------------------------------------------------------------- #
def table_1_workloads(
    scale: float = 0.05,
    workload_ids: Sequence[int] = (1, 2, 3, 4, 5),
    seed: Optional[int] = None,
    runner: Optional[SweepRunner] = None,
    store: Optional[object] = None,
) -> FigureResult:
    """Table 1: per-workload statistics under static backfill.

    The paper's table lists, for every workload, the number of jobs, the
    system and max-job sizes, and the average response time, average
    slowdown and makespan measured with the static backfill simulation.
    The per-workload simulations are independent and fan out through the
    sweep runner.
    """
    runner = runner or SweepRunner(store=store)
    workloads = {wid: build_workload(wid, scale=scale, seed=seed) for wid in workload_ids}
    sweep = runner.run(table_1_tasks(workloads))
    if not sweep.complete:
        return _shard_partial_result("table1", sweep)
    metrics = {wid: sweep[f"workload{wid}"].metrics for wid in workload_ids}
    return render_table_1(scale, workload_ids, workloads, metrics)


def table_1_tasks(workloads: Mapping[int, Workload]) -> List[SweepTask]:
    """The sweep tasks behind Table 1 (shared by the run and query paths)."""
    return [
        SweepTask(workload=wl, policy="static_backfill", key=f"workload{wid}", seed=0)
        for wid, wl in workloads.items()
    ]


def render_table_1(
    scale: float,
    workload_ids: Sequence[int],
    workloads: Mapping[int, Workload],
    metrics: Mapping[int, "WorkloadMetrics"],
) -> FigureResult:
    """Assemble the Table 1 result from per-workload metrics.

    Shared by :func:`table_1_workloads` (metrics from fresh/cached runs)
    and ``repro-sdpolicy query --report table1`` (metrics rebuilt from
    persisted records), so both render byte-identically.
    """
    rows: List[List[object]] = []
    per_workload: Dict[int, Dict[str, float]] = {}
    for wid in workload_ids:
        workload = workloads[wid]
        wmetrics = metrics[wid]
        spec = PAPER_WORKLOADS[wid]
        row = {
            "id": wid,
            "log_model": spec.label,
            "jobs": len(workload),
            "system_nodes": workload.system_nodes,
            "system_cpus": workload.system_cpus,
            "max_job_nodes": workload.max_job_nodes,
            "avg_response_time": wmetrics.avg_response_time,
            "avg_slowdown": wmetrics.avg_slowdown,
            "makespan": wmetrics.makespan,
        }
        per_workload[wid] = row
        rows.append(list(row.values()))
    headers = [
        "ID",
        "Log/model",
        "#jobs",
        "nodes",
        "cores",
        "max job nodes",
        "avg resp (s)",
        "avg slowdown",
        "makespan (s)",
    ]
    text = format_table(headers, rows, precision=1, title=f"Table 1 (scale={scale:g})")
    return FigureResult(
        figure="table1",
        description="Workload descriptions under static backfill",
        data={"rows": per_workload, "scale": scale},
        text=text,
    )


# --------------------------------------------------------------------- #
# Table 2
# --------------------------------------------------------------------- #
def table_2_application_mix(
    scale: float = 1.0,
    seed: int = 5005,
    runner: Optional[SweepRunner] = None,
    store: Optional[object] = None,
) -> FigureResult:
    """Table 2: the application mix assigned to the real-run workload.

    Table 2 is workload-only (no simulation), but the runner is threaded
    through anyway so CLI flags such as ``--workers`` are honoured — and
    never silently lose to ``REPRO_SWEEP_WORKERS`` — on every subcommand.
    """
    from repro.workloads.applications import application_shares

    spec = builtin_scenario("table2", scale=scale, seed=seed)
    outcome = spec.execute(runner=runner, store=store)
    workload = outcome.workload
    shares = application_shares(workload)
    return FigureResult(
        figure="table2",
        description="Real-run workload application mix",
        data={"shares": shares, "num_jobs": len(workload)},
        text=render_report(outcome),
    )


# --------------------------------------------------------------------- #
# Figures 1-3: MAX_SLOWDOWN sweep
# --------------------------------------------------------------------- #
def maxsd_sweep_spec(
    workload_name: str,
    maxsd_settings: Mapping[str, Union[float, str]] = MAXSD_SETTINGS,
    sharing_factor: float = 0.5,
    runtime_model: str = "ideal",
    malleable_fraction: float = 1.0,
) -> ScenarioSpec:
    """The Figures 1-3 scenario spec over an already-built workload.

    Shared by :func:`figure_1_to_3_maxsd_sweep` (which executes it) and
    the query layer (which recomputes the same task cache keys from it to
    locate persisted records) — the two must agree exactly or the query
    path would look up the wrong blobs.
    """
    return ScenarioSpec(
        name="figure1-3",
        workloads=[WorkloadRef(name=workload_name)],
        policy="sd_policy",
        grid={
            "max_slowdown": [
                {"label": label, "value": setting}
                for label, setting in maxsd_settings.items()
            ]
        },
        base={
            "runtime_model": runtime_model,
            "malleable_fraction": malleable_fraction,
            "sharing_factor": sharing_factor,
        },
        baseline={
            "policy": "static_backfill",
            "kwargs": {
                "runtime_model": runtime_model,
                "malleable_fraction": malleable_fraction,
            },
        },
        report="figures1-3",
    )


def figure_1_to_3_maxsd_sweep(
    workload: Workload,
    maxsd_settings: Mapping[str, Union[float, str]] = MAXSD_SETTINGS,
    sharing_factor: float = 0.5,
    runtime_model: str = "ideal",
    malleable_fraction: float = 1.0,
    runner: Optional[SweepRunner] = None,
    store: Optional[object] = None,
) -> FigureResult:
    """Figures 1, 2, 3: makespan / response / slowdown vs MAX_SLOWDOWN.

    All values are normalised to the static backfill run of the same
    workload, exactly as in the paper (SharingFactor 0.5, ideal runtime
    model for the simulated execution, worst-case model for scheduling
    estimates).  The baseline and every MAX_SLOWDOWN setting are independent
    simulations and fan out through the sweep runner.
    """
    spec = maxsd_sweep_spec(
        workload.name,
        maxsd_settings=maxsd_settings,
        sharing_factor=sharing_factor,
        runtime_model=runtime_model,
        malleable_fraction=malleable_fraction,
    )
    outcome = spec.execute(runner=runner, workloads=workload, store=store)
    if not outcome.complete:
        return _shard_partial_result("figure1-3", outcome.sweep)
    baseline = outcome.baseline_run
    runs: Dict[str, PolicyRun] = {"static_backfill": baseline}
    for cell in outcome.cells:
        runs[cell.label] = cell.run
    return FigureResult(
        figure="figure1-3",
        description="MAX_SLOWDOWN parameter sweep",
        data={
            "normalized": outcome.normalized(),
            "baseline": baseline.metrics.as_dict(),
            "runs": {label: run.metrics.as_dict() for label, run in runs.items()},
            "workload": workload.name,
            "sweep_wall_clock_seconds": outcome.sweep_wall_clock_seconds,
            "sweep_workers": outcome.sweep_workers,
            "sweep_cache_hits": outcome.sweep_cache_hits,
        },
        text=report_figures_1_to_3(outcome),
    )


# --------------------------------------------------------------------- #
# Figures 4-6: per-category heatmaps on the big workload
# --------------------------------------------------------------------- #
def _static_sd_scenario(
    name: str,
    workload: Workload,
    max_slowdown: float,
    runtime_model: str,
    runner: Optional[SweepRunner],
    store: Optional[object] = None,
):
    """Run the shared static/SD pair behind Figures 4-6 and Figure 7."""
    spec = builtin_scenario(name, max_slowdown=max_slowdown, runtime_model=runtime_model)
    spec.workloads = [WorkloadRef(name=workload.name)]
    return spec.execute(runner=runner, workloads=workload, store=store)


def figure_4_to_6_heatmaps(
    workload: Workload,
    max_slowdown: float = 10.0,
    runtime_model: str = "ideal",
    runner: Optional[SweepRunner] = None,
    store: Optional[object] = None,
) -> FigureResult:
    """Figures 4, 5, 6: static/SD ratio per job category (workload 4)."""
    outcome = _static_sd_scenario(
        "figure4-6", workload, max_slowdown, runtime_model, runner, store=store
    )
    if not outcome.complete:
        return _shard_partial_result("figure4-6", outcome.sweep)
    static, sd = outcome.baseline_run, outcome.cells[0].run
    return FigureResult(
        figure="figure4-6",
        description="Per-category ratios between static backfill and SD-Policy",
        data={
            "grids": scenario_heatmaps(outcome),
            "static_metrics": static.metrics.as_dict(),
            "sd_metrics": sd.metrics.as_dict(),
        },
        text=render_report(outcome),
    )


# --------------------------------------------------------------------- #
# Figure 7: per-day slowdown trend
# --------------------------------------------------------------------- #
def figure_7_daily_series(
    workload: Workload,
    max_slowdown: float = 10.0,
    runtime_model: str = "ideal",
    runner: Optional[SweepRunner] = None,
    store: Optional[object] = None,
) -> FigureResult:
    """Figure 7: daily average slowdown and malleable-job counts."""
    outcome = _static_sd_scenario(
        "figure7", workload, max_slowdown, runtime_model, runner, store=store
    )
    if not outcome.complete:
        return _shard_partial_result("figure7", outcome.sweep)
    static, sd = outcome.baseline_run, outcome.cells[0].run
    rows = scenario_daily_rows(outcome)
    total_jobs = max(1, len(sd.jobs))
    data = {
        "rows": rows,
        "malleable_scheduled": sd.metrics.malleable_scheduled,
        "mate_jobs": sd.metrics.mate_jobs,
        "malleable_fraction": sd.metrics.malleable_scheduled / total_jobs,
        "mate_fraction": sd.metrics.mate_jobs / total_jobs,
        "static_metrics": static.metrics.as_dict(),
        "sd_metrics": sd.metrics.as_dict(),
    }
    return FigureResult(
        figure="figure7",
        description="Daily slowdown trend and malleable-job counts",
        data=data,
        text=render_report(outcome),
    )


# --------------------------------------------------------------------- #
# Figure 8: ideal vs worst-case runtime model
# --------------------------------------------------------------------- #
def figure_8_runtime_models(
    workloads: Mapping[str, Workload],
    max_slowdown: Union[float, str] = "dynamic",
    sharing_factor: float = 0.5,
    runner: Optional[SweepRunner] = None,
    store: Optional[object] = None,
) -> FigureResult:
    """Figure 8: SD-Policy under the ideal vs the worst-case runtime model.

    For every workload, both models are simulated with SD-Policy DynAVGSD
    and normalised to the static backfill run of the same workload.  All
    ``3 × len(workloads)`` simulations fan out through the sweep runner.
    """
    spec = builtin_scenario(
        "figure8", max_slowdown=max_slowdown, sharing_factor=sharing_factor
    )
    spec.workloads = [WorkloadRef(name=name) for name in workloads]
    outcome = spec.execute(runner=runner, workloads=workloads, store=store)
    if not outcome.complete:
        return _shard_partial_result("figure8", outcome.sweep)
    per_workload: Dict[str, Dict[str, Dict[str, float]]] = {}
    for name in workloads:
        per_workload[name] = {
            str(cell.params["runtime_model"]): cell.normalized
            for cell in outcome.cells_for(name)
        }
    return FigureResult(
        figure="figure8",
        description="Ideal vs worst-case runtime model",
        data={"per_workload": per_workload},
        text=render_report(outcome),
    )


# --------------------------------------------------------------------- #
# Figure 9: the real-run emulation
# --------------------------------------------------------------------- #
def figure_9_real_run(
    scale: float = 1.0,
    sharing_factor: float = 0.5,
    max_slowdown: Union[float, str] = "dynamic",
    seed: int = 5005,
    runner: Optional[SweepRunner] = None,
    store: Optional[object] = None,
) -> FigureResult:
    """Figure 9: improvements of SD-Policy in the emulated MareNostrum4 run.

    Replays workload 5 with application-aware performance and energy models
    on the 49-node system, and reports the percentage improvement of
    makespan, response time, slowdown and energy over static backfill.  The
    static/SD pair fans out through the sweep runner.
    """
    spec = builtin_scenario(
        "figure9",
        scale=scale,
        seed=seed,
        sharing_factor=sharing_factor,
        max_slowdown=max_slowdown,
    )
    outcome = spec.execute(runner=runner, store=store)
    if not outcome.complete:
        return _shard_partial_result("figure9", outcome.sweep)
    stats = realrun_improvements(outcome)
    return FigureResult(
        figure="figure9",
        description="Real-run (emulated MareNostrum4) improvements",
        data={
            "improvements": stats["improvements"],
            "static_metrics": stats["static_metrics"].as_dict(),
            "sd_metrics": stats["sd_metrics"].as_dict(),
            "better_runtime_jobs": stats["better_runtime_jobs"],
            "malleable_scheduled": stats["malleable_scheduled"],
        },
        text=render_report(outcome),
    )
