"""Per-table / per-figure experiment definitions.

Every public function regenerates the data behind one table or figure of the
paper's evaluation (Section 4), at a configurable scale.  The returned
:class:`FigureResult` carries both the raw data (for programmatic checks in
the benchmarks/tests) and a rendered text version (for humans comparing
against the paper).

The experiment ↔ module mapping is documented in DESIGN.md; the measured
values and their comparison with the paper are recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.analysis.comparison import improvement_percent, normalize_to_baseline
from repro.analysis.figures import render_bar_chart, render_heatmap, render_series
from repro.analysis.tables import format_table, metrics_table
from repro.experiments.runner import PolicyRun, run_workload
from repro.experiments.sweep import SweepRunner, SweepTask, maxsd_sweep_tasks
from repro.metrics.heatmap import CategoryGrid, category_heatmap, heatmap_ratio
from repro.metrics.timeseries import daily_series_table
from repro.workloads.applications import application_shares
from repro.workloads.job_record import Workload
from repro.workloads.presets import PAPER_WORKLOADS, build_workload

#: The MAX_SLOWDOWN settings swept in Figures 1-3.
MAXSD_SETTINGS: Dict[str, Union[float, str]] = {
    "MAXSD 5": 5.0,
    "MAXSD 10": 10.0,
    "MAXSD 50": 50.0,
    "MAXSD inf": math.inf,
    "DynAVGSD": "dynamic",
}


@dataclass
class FigureResult:
    """Regenerated data for one table or figure."""

    figure: str
    description: str
    data: Dict[str, object] = field(default_factory=dict)
    text: str = ""

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text or f"<{self.figure}>"


# --------------------------------------------------------------------- #
# Table 1
# --------------------------------------------------------------------- #
def table_1_workloads(
    scale: float = 0.05,
    workload_ids: Sequence[int] = (1, 2, 3, 4, 5),
    seed: Optional[int] = None,
    runner: Optional[SweepRunner] = None,
) -> FigureResult:
    """Table 1: per-workload statistics under static backfill.

    The paper's table lists, for every workload, the number of jobs, the
    system and max-job sizes, and the average response time, average
    slowdown and makespan measured with the static backfill simulation.
    The per-workload simulations are independent and fan out through the
    sweep runner.
    """
    runner = runner or SweepRunner()
    workloads = {wid: build_workload(wid, scale=scale, seed=seed) for wid in workload_ids}
    sweep = runner.run(
        [
            SweepTask(workload=wl, policy="static_backfill", key=f"workload{wid}", seed=0)
            for wid, wl in workloads.items()
        ]
    )
    rows: List[List[object]] = []
    per_workload: Dict[int, Dict[str, float]] = {}
    for wid in workload_ids:
        workload = workloads[wid]
        run = sweep[f"workload{wid}"]
        spec = PAPER_WORKLOADS[wid]
        row = {
            "id": wid,
            "log_model": spec.label,
            "jobs": len(workload),
            "system_nodes": workload.system_nodes,
            "system_cpus": workload.system_cpus,
            "max_job_nodes": workload.max_job_nodes,
            "avg_response_time": run.metrics.avg_response_time,
            "avg_slowdown": run.metrics.avg_slowdown,
            "makespan": run.metrics.makespan,
        }
        per_workload[wid] = row
        rows.append(list(row.values()))
    headers = [
        "ID",
        "Log/model",
        "#jobs",
        "nodes",
        "cores",
        "max job nodes",
        "avg resp (s)",
        "avg slowdown",
        "makespan (s)",
    ]
    text = format_table(headers, rows, precision=1, title=f"Table 1 (scale={scale:g})")
    return FigureResult(
        figure="table1",
        description="Workload descriptions under static backfill",
        data={"rows": per_workload, "scale": scale},
        text=text,
    )


# --------------------------------------------------------------------- #
# Table 2
# --------------------------------------------------------------------- #
def table_2_application_mix(scale: float = 1.0, seed: int = 5005) -> FigureResult:
    """Table 2: the application mix assigned to the real-run workload."""
    workload = build_workload(5, scale=scale, seed=seed)
    shares = application_shares(workload)
    rows = [[app, f"{100 * share:.1f}%"] for app, share in shares.items()]
    text = format_table(
        ["Application", "% of workload"], rows, title=f"Table 2 (scale={scale:g})"
    )
    return FigureResult(
        figure="table2",
        description="Real-run workload application mix",
        data={"shares": shares, "num_jobs": len(workload)},
        text=text,
    )


# --------------------------------------------------------------------- #
# Figures 1-3: MAX_SLOWDOWN sweep
# --------------------------------------------------------------------- #
def figure_1_to_3_maxsd_sweep(
    workload: Workload,
    maxsd_settings: Mapping[str, Union[float, str]] = MAXSD_SETTINGS,
    sharing_factor: float = 0.5,
    runtime_model: str = "ideal",
    malleable_fraction: float = 1.0,
    runner: Optional[SweepRunner] = None,
) -> FigureResult:
    """Figures 1, 2, 3: makespan / response / slowdown vs MAX_SLOWDOWN.

    All values are normalised to the static backfill run of the same
    workload, exactly as in the paper (SharingFactor 0.5, ideal runtime
    model for the simulated execution, worst-case model for scheduling
    estimates).  The baseline and every MAX_SLOWDOWN setting are independent
    simulations and fan out through the sweep runner.
    """
    runner = runner or SweepRunner()
    sweep = runner.run(
        maxsd_sweep_tasks(
            workload,
            maxsd_settings,
            sharing_factor=sharing_factor,
            runtime_model=runtime_model,
            malleable_fraction=malleable_fraction,
        )
    )
    baseline = sweep["static_backfill"]
    normalized: Dict[str, Dict[str, float]] = {}
    runs: Dict[str, PolicyRun] = {"static_backfill": baseline}
    for label in maxsd_settings:
        run = sweep[label]
        runs[label] = run
        normalized[label] = normalize_to_baseline(run.metrics, baseline.metrics)
    charts = []
    for metric, figure_name in (
        ("makespan", "Figure 1 - makespan"),
        ("avg_response_time", "Figure 2 - average response time"),
        ("avg_slowdown", "Figure 3 - average slowdown"),
    ):
        charts.append(
            render_bar_chart(
                {label: vals[metric] for label, vals in normalized.items()},
                title=f"{figure_name} ({workload.name}, normalised to static backfill)",
            )
        )
    return FigureResult(
        figure="figure1-3",
        description="MAX_SLOWDOWN parameter sweep",
        data={
            "normalized": normalized,
            "baseline": baseline.metrics.as_dict(),
            "runs": {label: run.metrics.as_dict() for label, run in runs.items()},
            "workload": workload.name,
            "sweep_wall_clock_seconds": sweep.total_wall_clock_seconds,
            "sweep_workers": sweep.workers,
            "sweep_cache_hits": sweep.cache_hits,
        },
        text="\n\n".join(charts),
    )


# --------------------------------------------------------------------- #
# Figures 4-6: per-category heatmaps on the big workload
# --------------------------------------------------------------------- #
def figure_4_to_6_heatmaps(
    workload: Workload,
    max_slowdown: float = 10.0,
    runtime_model: str = "ideal",
) -> FigureResult:
    """Figures 4, 5, 6: static/SD ratio per job category (workload 4)."""
    static = run_workload(workload, "static_backfill", runtime_model=runtime_model)
    sd = run_workload(
        workload, "sd_policy", runtime_model=runtime_model, max_slowdown=max_slowdown
    )
    grids: Dict[str, CategoryGrid] = {}
    texts: List[str] = []
    for metric, figure_name in (
        ("slowdown", "Figure 4 - slowdown ratio (static / SD-Policy)"),
        ("runtime", "Figure 5 - runtime ratio (static / SD-Policy)"),
        ("wait", "Figure 6 - wait-time ratio (static / SD-Policy)"),
    ):
        ratio = heatmap_ratio(
            category_heatmap(static.jobs, metric=metric),
            category_heatmap(sd.jobs, metric=metric),
        )
        grids[metric] = ratio
        texts.append(render_heatmap(ratio, title=f"{figure_name} ({workload.name})"))
    return FigureResult(
        figure="figure4-6",
        description="Per-category ratios between static backfill and SD-Policy",
        data={
            "grids": grids,
            "static_metrics": static.metrics.as_dict(),
            "sd_metrics": sd.metrics.as_dict(),
        },
        text="\n\n".join(texts),
    )


# --------------------------------------------------------------------- #
# Figure 7: per-day slowdown trend
# --------------------------------------------------------------------- #
def figure_7_daily_series(
    workload: Workload,
    max_slowdown: float = 10.0,
    runtime_model: str = "ideal",
) -> FigureResult:
    """Figure 7: daily average slowdown and malleable-job counts."""
    static = run_workload(workload, "static_backfill", runtime_model=runtime_model)
    sd = run_workload(
        workload, "sd_policy", runtime_model=runtime_model, max_slowdown=max_slowdown
    )
    rows = daily_series_table(static.jobs, sd.jobs)
    total_jobs = max(1, len(sd.jobs))
    data = {
        "rows": rows,
        "malleable_scheduled": sd.metrics.malleable_scheduled,
        "mate_jobs": sd.metrics.mate_jobs,
        "malleable_fraction": sd.metrics.malleable_scheduled / total_jobs,
        "mate_fraction": sd.metrics.mate_jobs / total_jobs,
        "static_metrics": static.metrics.as_dict(),
        "sd_metrics": sd.metrics.as_dict(),
    }
    text = render_series(
        rows,
        x_key="day",
        series_keys=("static_slowdown", "sd_slowdown", "malleable_jobs"),
        title=f"Figure 7 - daily average slowdown ({workload.name})",
    )
    return FigureResult(
        figure="figure7",
        description="Daily slowdown trend and malleable-job counts",
        data=data,
        text=text,
    )


# --------------------------------------------------------------------- #
# Figure 8: ideal vs worst-case runtime model
# --------------------------------------------------------------------- #
def figure_8_runtime_models(
    workloads: Mapping[str, Workload],
    max_slowdown: Union[float, str] = "dynamic",
    sharing_factor: float = 0.5,
    runner: Optional[SweepRunner] = None,
) -> FigureResult:
    """Figure 8: SD-Policy under the ideal vs the worst-case runtime model.

    For every workload, both models are simulated with SD-Policy DynAVGSD
    and normalised to the static backfill run of the same workload.  All
    ``3 × len(workloads)`` simulations fan out through the sweep runner.
    """
    runner = runner or SweepRunner()
    tasks: List[SweepTask] = []
    for name, workload in workloads.items():
        tasks.append(
            SweepTask(workload=workload, policy="static_backfill",
                      key=f"{name}/static", seed=0)
        )
        for model in ("ideal", "worst_case"):
            tasks.append(
                SweepTask(
                    workload=workload,
                    policy="sd_policy",
                    key=f"{name}/{model}",
                    label=f"sd_{model}",
                    seed=0,
                    kwargs={
                        "runtime_model": model,
                        "max_slowdown": max_slowdown,
                        "sharing_factor": sharing_factor,
                    },
                )
            )
    sweep = runner.run(tasks)
    per_workload: Dict[str, Dict[str, Dict[str, float]]] = {}
    charts: List[str] = []
    for name, workload in workloads.items():
        baseline = sweep[f"{name}/static"]
        entry: Dict[str, Dict[str, float]] = {}
        for model in ("ideal", "worst_case"):
            run = sweep[f"{name}/{model}"]
            entry[model] = normalize_to_baseline(run.metrics, baseline.metrics)
        per_workload[name] = entry
        chart_values = {
            f"{model}/{metric}": entry[model][metric]
            for model in entry
            for metric in ("makespan", "avg_response_time", "avg_slowdown")
        }
        charts.append(
            render_bar_chart(
                chart_values,
                title=f"Figure 8 - runtime models ({name}, normalised to static backfill)",
            )
        )
    return FigureResult(
        figure="figure8",
        description="Ideal vs worst-case runtime model",
        data={"per_workload": per_workload},
        text="\n\n".join(charts),
    )


# --------------------------------------------------------------------- #
# Figure 9: the real-run emulation
# --------------------------------------------------------------------- #
def figure_9_real_run(
    scale: float = 1.0,
    sharing_factor: float = 0.5,
    max_slowdown: Union[float, str] = "dynamic",
    seed: int = 5005,
) -> FigureResult:
    """Figure 9: improvements of SD-Policy in the emulated MareNostrum4 run.

    Delegates to :mod:`repro.realrun.emulator`, which replays workload 5
    with application-aware performance and energy models on the 49-node
    system, and reports the percentage improvement of makespan, response
    time, slowdown and energy over static backfill.
    """
    from repro.realrun.emulator import RealRunEmulator

    emulator = RealRunEmulator(
        scale=scale,
        sharing_factor=sharing_factor,
        max_slowdown=max_slowdown,
        seed=seed,
    )
    outcome = emulator.compare()
    improvements = outcome.improvements
    text = render_bar_chart(
        improvements,
        title="Figure 9 - improvement (%) of SD-Policy over static backfill",
        reference=0.0,
        fmt="{:.1f}%",
    )
    return FigureResult(
        figure="figure9",
        description="Real-run (emulated MareNostrum4) improvements",
        data={
            "improvements": improvements,
            "static_metrics": outcome.static_metrics.as_dict(),
            "sd_metrics": outcome.sd_metrics.as_dict(),
            "better_runtime_jobs": outcome.better_runtime_jobs,
            "malleable_scheduled": outcome.sd_metrics.malleable_scheduled,
        },
        text=text,
    )
