"""Declarative scenario subsystem: spec in, paper artifact out.

A :class:`ScenarioSpec` describes one experiment the way the paper's
evaluation section does — *which workload(s)* (a Table 1 preset at a scale,
or a real SWF log), *which policy*, and *which parameter grid*
(``max_slowdown``, ``sharing_factor``, ``malleable_fraction``,
``runtime_model``, …) — without any Python control flow.  The spec

* round-trips through a plain dict / JSON file (``to_dict``/``from_dict``,
  ``load_spec``/``save_spec``), so scenarios are data, not code;
* expands its grid into :class:`repro.experiments.sweep.SweepTask` lists
  with stable per-cell keys (grid order is preserved);
* executes through :class:`repro.experiments.sweep.SweepRunner`, so every
  cell fans out over the process pool and hits the on-disk result cache;
* normalises every cell to the scenario's baseline run (the paper's
  "normalised to static backfill" convention).

Every figure/table function in :mod:`repro.experiments.paper` and every
ablation benchmark is a thin wrapper around :func:`run_scenario` plus one of
the report renderers below; ``repro-sdpolicy scenario`` runs a user-written
JSON spec (or a named built-in) from the shell.  Writing a new experiment
means writing a spec, not a loop.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.analysis.comparison import improvement_percent, normalize_to_baseline
from repro.analysis.figures import render_bar_chart, render_heatmap, render_series
from repro.analysis.tables import format_table, metrics_table
from repro.experiments.runner import PolicyRun
from repro.experiments.sweep import SweepResult, SweepRunner, SweepTask
from repro.metrics.heatmap import CategoryGrid, category_heatmap, heatmap_ratio
from repro.metrics.timeseries import daily_series_table
from repro.workloads.job_record import Workload

#: Metrics normalised against the baseline (the paper's Figures 1-3/8 keys).
NORMALIZED_KEYS = ("makespan", "avg_response_time", "avg_slowdown")


class ScenarioError(ValueError):
    """Raised for malformed scenario specs."""


# --------------------------------------------------------------------- #
# JSON-safe value encoding (inf does not exist in strict JSON)
# --------------------------------------------------------------------- #
def encode_value(value: Any) -> Any:
    """Encode one parameter value into a JSON-safe form (inf → ``"inf"``)."""
    if isinstance(value, float):
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        if math.isnan(value):
            raise ScenarioError("NaN is not a valid scenario parameter value")
    if isinstance(value, dict):
        return {k: encode_value(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [encode_value(v) for v in value]
    return value


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value` (``"inf"`` → ``math.inf``)."""
    if isinstance(value, str):
        lowered = value.lower()
        if lowered in ("inf", "+inf", "infinity"):
            return math.inf
        if lowered in ("-inf", "-infinity"):
            return -math.inf
        return value
    if isinstance(value, dict):
        return {k: decode_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [decode_value(v) for v in value]
    return value


def _format_value(value: Any) -> str:
    """Compact display form of a grid value for auto-generated labels."""
    if isinstance(value, float):
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        return f"{value:g}"
    return str(value)


# --------------------------------------------------------------------- #
# Workload references
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class WorkloadRef:
    """Reference to a workload: a Table 1 preset at a scale, or an SWF log.

    Exactly one of ``preset`` (a paper workload id, 1-5) and ``swf`` (a path
    to a Standard Workload Format file) should be set.  A ref with neither
    is *abstract* — valid only when :func:`run_scenario` is handed a
    pre-built workload override (the ablation benchmarks do this for their
    custom generator models).

    ``applications`` optionally names an application mix to stamp onto the
    materialised workload (``"table2"``, the paper's real-run mix), giving
    every job an application name the contention-aware policies and the
    application-aware runtime model can resolve against a profile set.  The
    stamped names flow into the workload fingerprint, so refs with and
    without a mix never share cache entries.
    """

    preset: Optional[int] = None
    swf: Optional[str] = None
    scale: float = 1.0
    seed: Optional[int] = None
    name: Optional[str] = None
    applications: Optional[str] = None

    def key(self) -> str:
        """Stable key identifying this ref inside the scenario."""
        if self.name:
            return self.name
        if self.preset is not None:
            return f"workload{self.preset}"
        if self.swf:
            return os.path.splitext(os.path.basename(self.swf))[0]
        return "workload"

    def build(self) -> Workload:
        """Materialise the referenced workload (and stamp its app mix)."""
        if self.preset is not None and self.swf:
            raise ScenarioError(
                f"workload ref {self.key()!r}: preset and swf are mutually exclusive"
            )
        if self.preset is not None:
            from repro.workloads.presets import build_workload

            workload = build_workload(self.preset, scale=self.scale, seed=self.seed)
        elif self.swf:
            from repro.workloads.swf import read_swf

            workload = read_swf(self.swf)
        else:
            raise ScenarioError(
                f"workload ref {self.key()!r} is abstract (no preset or swf); "
                "pass a pre-built workload to run_scenario()"
            )
        return self._stamp_applications(workload)

    def _stamp_applications(self, workload: Workload) -> Workload:
        """Assign the named application mix to every job, if one is set."""
        if not self.applications:
            return workload
        if self.applications != "table2":
            raise ScenarioError(
                f"workload ref {self.key()!r}: unknown application mix "
                f"{self.applications!r}; available: table2"
            )
        from repro.workloads.applications import assign_applications

        return assign_applications(workload)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        if self.preset is not None:
            out["preset"] = self.preset
        if self.swf is not None:
            out["swf"] = self.swf
        if self.scale != 1.0:
            out["scale"] = self.scale
        if self.seed is not None:
            out["seed"] = self.seed
        if self.name is not None:
            out["name"] = self.name
        if self.applications is not None:
            out["applications"] = self.applications
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkloadRef":
        known = {"preset", "swf", "scale", "seed", "name", "applications"}
        unknown = set(data) - known
        if unknown:
            raise ScenarioError(f"unknown workload ref fields: {sorted(unknown)}")
        return cls(
            preset=data.get("preset"),
            swf=data.get("swf"),
            scale=float(data.get("scale", 1.0)),
            seed=data.get("seed"),
            name=data.get("name"),
            applications=data.get("applications"),
        )


# --------------------------------------------------------------------- #
# Grid points
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class GridPoint:
    """One value of one grid parameter, with its display label."""

    param: str
    value: Any
    label: str

    def __hash__(self) -> int:  # value may be unhashable; label is unique
        return hash((self.param, self.label))


def _as_grid(grid: Mapping[str, Sequence[Any]]) -> Dict[str, List[GridPoint]]:
    """Normalise a grid mapping into labelled :class:`GridPoint` lists.

    Accepts plain values (auto-labelled ``param=value``) or
    ``{"label": ..., "value": ...}`` dicts for custom labels.
    """
    out: Dict[str, List[GridPoint]] = {}
    for param, values in grid.items():
        if isinstance(values, (str, bytes)) or not isinstance(values, (list, tuple)):
            raise ScenarioError(f"grid parameter {param!r} must map to a list of values")
        points: List[GridPoint] = []
        for value in values:
            if isinstance(value, GridPoint):
                points.append(value)
                continue
            if isinstance(value, Mapping):
                extra = set(value) - {"label", "value"}
                if extra or "value" not in value:
                    raise ScenarioError(
                        f"grid parameter {param!r}: labelled values need exactly "
                        f"'label' and 'value' keys, got {sorted(value)}"
                    )
                raw = decode_value(value["value"])
                label = str(value.get("label") or f"{param}={_format_value(raw)}")
            else:
                raw = decode_value(value)
                label = f"{param}={_format_value(raw)}"
            points.append(GridPoint(param=param, value=raw, label=label))
        labels = [p.label for p in points]
        if len(set(labels)) != len(labels):
            raise ScenarioError(f"grid parameter {param!r} has duplicate labels: {labels}")
        out[param] = points
    return out


# --------------------------------------------------------------------- #
# The spec
# --------------------------------------------------------------------- #
@dataclass
class ScenarioSpec:
    """Declarative description of one experiment.

    Parameters
    ----------
    name / description:
        Identification, echoed in the default report.
    workloads:
        One or more :class:`WorkloadRef`; with several refs the whole grid
        runs per workload and cells normalise to *their own* workload's
        baseline (the Figure 8 shape).
    policy:
        Scheduler name for every grid cell (``sd_policy`` by default).  A
        grid parameter named ``"policy"`` overrides it per cell.
    grid:
        Mapping of run/scheduler parameter → list of values (plain, or
        ``{"label", "value"}`` dicts).  The cartesian product over the
        parameters (in mapping order) defines the cells; an empty grid is a
        single cell running ``policy`` with ``base`` alone.
    base:
        Parameters shared by every cell (e.g. ``runtime_model``,
        ``sharing_factor``); grid values win on conflict.
    baseline:
        Optional ``{"policy": ..., "kwargs": {...}}`` run executed once per
        workload and used to normalise every cell.  ``None`` disables
        normalisation.
    seed:
        Simulation seed forwarded to every task (the paper runs use 0).
    report:
        Name of the report renderer used by :func:`render_report` — one of
        ``table``, ``figures1-3``, ``heatmaps``, ``daily``,
        ``runtime_models``, ``realrun``, ``mix``, ``faceoff``.
    analytics:
        If true, every executed task publishes per-job records to the
        result store (requires one), queryable later with
        ``repro-sdpolicy query``.
    """

    name: str
    workloads: List[WorkloadRef] = field(default_factory=list)
    policy: Optional[str] = "sd_policy"
    grid: Dict[str, List[GridPoint]] = field(default_factory=dict)
    base: Dict[str, Any] = field(default_factory=dict)
    baseline: Optional[Dict[str, Any]] = None
    seed: int = 0
    report: str = "table"
    description: str = ""
    #: Capture per-job records for every executed task (see
    #: :mod:`repro.analytics`).  Off the cache key: an analytics scenario
    #: reuses plain cached runs and vice versa.
    analytics: bool = False

    def __post_init__(self) -> None:
        if isinstance(self.workloads, WorkloadRef):
            self.workloads = [self.workloads]
        self.grid = _as_grid(self.grid)
        self.base = decode_value(dict(self.base))
        if self.baseline is not None:
            extra = set(self.baseline) - {"policy", "kwargs"}
            if extra:
                raise ScenarioError(f"unknown baseline fields: {sorted(extra)}")
            self.baseline = {
                "policy": self.baseline.get("policy", "static_backfill"),
                "kwargs": decode_value(dict(self.baseline.get("kwargs") or {})),
            }
        if not self.workloads:
            raise ScenarioError(f"scenario {self.name!r} needs at least one workload ref")
        keys = [ref.key() for ref in self.workloads]
        if len(set(keys)) != len(keys):
            raise ScenarioError(f"duplicate workload keys in scenario {self.name!r}: {keys}")
        if self.report not in REPORTS:
            raise ScenarioError(
                f"unknown report {self.report!r}; expected one of {sorted(REPORTS)}"
            )

    # ------------------------------------------------------------------ #
    @property
    def baseline_label(self) -> Optional[str]:
        """Display label of the baseline run (its policy name)."""
        if self.baseline is None:
            return None
        return str(self.baseline["policy"])

    def cells(self) -> List[Tuple[str, str, Dict[str, Any]]]:
        """Expand the grid into ``(label, policy, params)`` cells, in order.

        A spec with ``policy=None`` and no ``"policy"`` grid parameter has
        no cells at all — a *workload-only* scenario (Table 2 is one).
        """
        if self.policy is None and "policy" not in self.grid:
            return []
        combos: List[List[GridPoint]] = [[]]
        for points in self.grid.values():
            combos = [combo + [point] for combo in combos for point in points]
        out: List[Tuple[str, str, Dict[str, Any]]] = []
        for combo in combos:
            params = dict(self.base)
            params.update({point.param: point.value for point in combo})
            policy = str(params.pop("policy", self.policy or "sd_policy"))
            label = ", ".join(point.label for point in combo) or policy
            out.append((label, policy, params))
        labels = [label for label, _, _ in out]
        if len(set(labels)) != len(labels):
            raise ScenarioError(f"scenario {self.name!r} has duplicate cell labels")
        return out

    def tasks(self, workloads: Mapping[str, Workload]) -> List[SweepTask]:
        """Expand the scenario into sweep tasks, one per (workload × cell).

        ``workloads`` maps each ref key to its materialised workload.  Task
        keys are ``<workload key>::<cell label>`` (``::baseline`` for the
        baseline run), unique by construction.
        """
        tasks: List[SweepTask] = []
        for ref in self.workloads:
            wkey = ref.key()
            workload = workloads[wkey]
            if self.baseline is not None:
                tasks.append(
                    SweepTask(
                        workload=workload,
                        policy=str(self.baseline["policy"]),
                        key=f"{wkey}::baseline",
                        seed=self.seed,
                        kwargs=dict(self.baseline["kwargs"]),
                    )
                )
            for label, policy, params in self.cells():
                tasks.append(
                    SweepTask(
                        workload=workload,
                        policy=policy,
                        key=f"{wkey}::{label}",
                        label=label,
                        seed=self.seed,
                        kwargs=params,
                    )
                )
        return tasks

    # ------------------------------------------------------------------ #
    # Dict / JSON round-trip
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict (JSON-safe) form of the spec."""
        out: Dict[str, Any] = {
            "name": self.name,
            "workloads": [ref.to_dict() for ref in self.workloads],
            "policy": self.policy,
            "grid": {
                param: [
                    {"label": p.label, "value": encode_value(p.value)} for p in points
                ]
                for param, points in self.grid.items()
            },
            "base": encode_value(self.base),
            "seed": self.seed,
            "report": self.report,
        }
        if self.baseline is not None:
            out["baseline"] = {
                "policy": self.baseline["policy"],
                "kwargs": encode_value(self.baseline["kwargs"]),
            }
        if self.description:
            out["description"] = self.description
        if self.analytics:
            out["analytics"] = True
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Build a spec from its dict form (inverse of :meth:`to_dict`)."""
        known = {
            "name", "workload", "workloads", "policy", "grid", "base",
            "baseline", "seed", "report", "description", "analytics",
        }
        unknown = set(data) - known
        if unknown:
            raise ScenarioError(f"unknown scenario fields: {sorted(unknown)}")
        if "name" not in data:
            raise ScenarioError("scenario spec needs a 'name'")
        refs_data = data.get("workloads")
        if refs_data is None:
            single = data.get("workload")
            refs_data = [single] if single is not None else []
        workloads = [WorkloadRef.from_dict(ref) for ref in refs_data]
        baseline = data.get("baseline")
        if isinstance(baseline, str):
            baseline = {"policy": baseline, "kwargs": {}}
        elif baseline is not None:
            baseline = {
                "policy": baseline.get("policy", "static_backfill"),
                "kwargs": decode_value(baseline.get("kwargs") or {}),
            }
        return cls(
            name=str(data["name"]),
            workloads=workloads,
            policy=data.get("policy", "sd_policy"),
            # Values pass through verbatim; _as_grid rejects non-list values
            # (list("inf") would otherwise explode into per-character cells).
            grid=dict(data.get("grid") or {}),
            base=decode_value(data.get("base") or {}),
            baseline=baseline,
            seed=int(data.get("seed", 0)),
            report=str(data.get("report", "table")),
            description=str(data.get("description", "")),
            analytics=bool(data.get("analytics", False)),
        )

    def execute(
        self,
        runner: Optional[SweepRunner] = None,
        workloads: Optional[Union[Workload, Mapping[str, Workload]]] = None,
        store: Optional[Any] = None,
    ) -> "ScenarioOutcome":
        """Run this scenario through the sweep runner.

        Convenience wrapper around :func:`run_scenario`; a runner carrying a
        sharded executor runs only its slice of the expanded tasks and
        returns a partial outcome (``outcome.complete`` is ``False``).
        ``store`` (a :class:`repro.store.ResultStore` or URL) configures the
        result cache when no explicit runner is passed.
        """
        return run_scenario(self, runner=runner, workloads=workloads, store=store)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))


def load_spec(path: Union[str, os.PathLike]) -> ScenarioSpec:
    """Load a scenario spec from a JSON file."""
    return ScenarioSpec.from_json(Path(path).read_text(encoding="utf-8"))


def save_spec(spec: ScenarioSpec, path: Union[str, os.PathLike]) -> None:
    """Write a scenario spec to a JSON file."""
    Path(path).write_text(spec.to_json() + "\n", encoding="utf-8")


# --------------------------------------------------------------------- #
# Execution
# --------------------------------------------------------------------- #
@dataclass
class ScenarioCell:
    """One executed grid cell of a scenario."""

    label: str
    workload_key: str
    policy: str
    params: Dict[str, Any]
    run: PolicyRun
    normalized: Optional[Dict[str, float]] = None


@dataclass
class ScenarioOutcome:
    """All runs of one scenario, with per-workload baselines."""

    spec: ScenarioSpec
    workloads: Dict[str, Workload]
    baselines: Dict[str, PolicyRun]
    cells: List[ScenarioCell]
    sweep: Optional[SweepResult] = None
    #: Memo for derived statistics (heatmap grids, daily rows, real-run
    #: improvements), so the figure data and its rendered report share one
    #: computation over the job lists.
    _cache: Dict[str, Any] = field(default_factory=dict, repr=False, compare=False)

    @property
    def complete(self) -> bool:
        """``False`` when a sharded run left sweep tasks unfinished."""
        return self.sweep is None or self.sweep.complete

    # -- single-workload conveniences ---------------------------------- #
    @property
    def workload(self) -> Workload:
        """The workload of a single-workload scenario."""
        if len(self.workloads) != 1:
            raise ValueError("scenario has several workloads; index by key")
        return next(iter(self.workloads.values()))

    @property
    def baseline_run(self) -> Optional[PolicyRun]:
        """The baseline run of a single-workload scenario (or ``None``)."""
        if not self.baselines:
            return None
        if len(self.workloads) != 1:
            raise ValueError("scenario has several workloads; use .baselines")
        return next(iter(self.baselines.values()))

    def cells_for(self, workload_key: str) -> List[ScenarioCell]:
        """The cells of one workload, in grid order."""
        return [c for c in self.cells if c.workload_key == workload_key]

    def normalized(self, workload_key: Optional[str] = None) -> Dict[str, Dict[str, float]]:
        """``{cell label: normalised metrics}`` for one workload."""
        if workload_key is None:
            key = next(iter(self.workloads))
        else:
            key = workload_key
        return {
            c.label: c.normalized
            for c in self.cells_for(key)
            if c.normalized is not None
        }

    @property
    def runs(self) -> Dict[str, PolicyRun]:
        """All runs keyed by their sweep key (``wkey::label``)."""
        out = {f"{k}::baseline": run for k, run in self.baselines.items()}
        for cell in self.cells:
            out[f"{cell.workload_key}::{cell.label}"] = cell.run
        return out

    # -- sweep statistics ---------------------------------------------- #
    @property
    def sweep_wall_clock_seconds(self) -> float:
        return self.sweep.total_wall_clock_seconds if self.sweep else 0.0

    @property
    def sweep_workers(self) -> int:
        return self.sweep.workers if self.sweep else 0

    @property
    def sweep_cache_hits(self) -> int:
        return self.sweep.cache_hits if self.sweep else 0


def _resolve_workloads(
    spec: ScenarioSpec,
    override: Optional[Union[Workload, Mapping[str, Workload]]],
) -> Dict[str, Workload]:
    keys = [ref.key() for ref in spec.workloads]
    if override is None:
        return {ref.key(): ref.build() for ref in spec.workloads}
    if isinstance(override, Workload):
        if len(keys) != 1:
            raise ScenarioError(
                "a single workload override needs a single-workload scenario"
            )
        return {keys[0]: override}
    resolved: Dict[str, Workload] = {}
    for ref in spec.workloads:
        key = ref.key()
        resolved[key] = override[key] if key in override else ref.build()
    return resolved


def run_scenario(
    spec: ScenarioSpec,
    runner: Optional[SweepRunner] = None,
    workloads: Optional[Union[Workload, Mapping[str, Workload]]] = None,
    store: Optional[Any] = None,
) -> ScenarioOutcome:
    """Execute a scenario through the parallel sweep runner.

    ``workloads`` optionally overrides the spec's workload refs with
    pre-built :class:`Workload` objects — a bare workload for
    single-workload scenarios, or a mapping keyed like the refs.  Cells are
    normalised to their workload's baseline run when the spec has one.
    ``store`` selects the result-store backend (URL or
    :class:`repro.store.ResultStore`) when no explicit ``runner`` is given;
    with both passed the runner — which already carries a store — wins.
    """
    resolved = _resolve_workloads(spec, workloads)
    tasks = spec.tasks(resolved)
    sweep = None
    if tasks:
        runner = runner or SweepRunner(store=store)
        if spec.analytics and not runner.analytics:
            if runner.store is None:
                raise ScenarioError(
                    f"scenario {spec.name!r} sets analytics=true, which needs "
                    "a result store to publish records (pass --store or "
                    "--cache-dir)"
                )
            runner.analytics = True
        sweep = runner.run(tasks)
    if sweep is not None and not sweep.complete:
        # A sharded invocation: only this shard's slice ran, so cells and
        # baselines cannot be assembled yet.  Callers check ``.complete``
        # and render a shard progress summary instead of a report.
        return ScenarioOutcome(
            spec=spec, workloads=resolved, baselines={}, cells=[], sweep=sweep
        )
    baselines: Dict[str, PolicyRun] = {}
    cells: List[ScenarioCell] = []
    for ref in spec.workloads:
        wkey = ref.key()
        baseline = None
        if spec.baseline is not None and sweep is not None:
            baseline = sweep[f"{wkey}::baseline"]
            baselines[wkey] = baseline
        for label, policy, params in spec.cells() if tasks else []:
            run = sweep[f"{wkey}::{label}"]
            cells.append(
                ScenarioCell(
                    label=label,
                    workload_key=wkey,
                    policy=policy,
                    params=params,
                    run=run,
                    normalized=(
                        normalize_to_baseline(run.metrics, baseline.metrics)
                        if baseline is not None
                        else None
                    ),
                )
            )
    return ScenarioOutcome(
        spec=spec,
        workloads=resolved,
        baselines=baselines,
        cells=cells,
        sweep=sweep,
    )


# --------------------------------------------------------------------- #
# Report renderers
# --------------------------------------------------------------------- #
def report_table(outcome: ScenarioOutcome) -> str:
    """Generic report: per-workload metrics table plus normalised columns."""
    spec = outcome.spec
    blocks: List[str] = []
    for wkey, workload in outcome.workloads.items():
        runs: Dict[str, Any] = {}
        baseline = outcome.baselines.get(wkey)
        if baseline is not None:
            runs[spec.baseline_label] = baseline.metrics
        for cell in outcome.cells_for(wkey):
            runs[cell.label] = cell.run.metrics
        title = f"Scenario {spec.name} ({workload.name}, {len(workload)} jobs)"
        if not runs:
            blocks.append(f"{title}\n(no simulations: workload-only scenario)")
            continue
        blocks.append(metrics_table(runs, title=title))
        if baseline is not None:
            headers = ["cell"] + list(NORMALIZED_KEYS)
            rows = [
                [cell.label] + [cell.normalized.get(k, float("nan")) for k in NORMALIZED_KEYS]
                for cell in outcome.cells_for(wkey)
                if cell.normalized is not None
            ]
            blocks.append(
                format_table(
                    headers,
                    rows,
                    title=f"Normalised to {spec.baseline_label} (values < 1 improve)",
                )
            )
    return "\n\n".join(blocks)


def report_figures_1_to_3(outcome: ScenarioOutcome) -> str:
    """The Figures 1-3 bar charts (normalised makespan/response/slowdown)."""
    workload = outcome.workload
    normalized = outcome.normalized()
    charts = []
    for metric, figure_name in (
        ("makespan", "Figure 1 - makespan"),
        ("avg_response_time", "Figure 2 - average response time"),
        ("avg_slowdown", "Figure 3 - average slowdown"),
    ):
        charts.append(
            render_bar_chart(
                {label: vals[metric] for label, vals in normalized.items()},
                title=f"{figure_name} ({workload.name}, normalised to static backfill)",
            )
        )
    return "\n\n".join(charts)


def _static_sd_pair(outcome: ScenarioOutcome) -> Tuple[PolicyRun, PolicyRun]:
    """The (baseline, single-cell) run pair of a two-run scenario."""
    baseline = outcome.baseline_run
    if baseline is None or len(outcome.cells) != 1:
        raise ScenarioError(
            f"report {outcome.spec.report!r} needs a baseline and exactly one "
            f"grid cell; got {len(outcome.cells)} cells"
        )
    pair = (baseline, outcome.cells[0].run)
    for run in pair:
        if not run.jobs and run.result.num_jobs > 0:
            raise ScenarioError(
                f"the {outcome.spec.report!r} report of scenario "
                f"{outcome.spec.name!r} needs per-job data, but run "
                f"{run.label!r} was executed with retain_jobs=False and its "
                f"{run.result.num_jobs} jobs were folded into aggregates only; "
                "re-run with --retain-jobs (keep Job objects in memory) or "
                "with --analytics (persist per-job records to the store and "
                "render via 'repro-sdpolicy query --report')"
            )
    return pair


def scenario_heatmaps(outcome: ScenarioOutcome) -> Dict[str, CategoryGrid]:
    """Figures 4-6 grids: per-category static/SD ratios of the run pair."""
    if "heatmaps" not in outcome._cache:
        static, sd = _static_sd_pair(outcome)
        grids: Dict[str, CategoryGrid] = {}
        for metric in ("slowdown", "runtime", "wait"):
            grids[metric] = heatmap_ratio(
                category_heatmap(static.jobs, metric=metric),
                category_heatmap(sd.jobs, metric=metric),
            )
        outcome._cache["heatmaps"] = grids
    return outcome._cache["heatmaps"]


def report_heatmaps(outcome: ScenarioOutcome) -> str:
    """The Figures 4-6 text heatmaps."""
    workload = outcome.workload
    grids = scenario_heatmaps(outcome)
    texts = []
    for metric, figure_name in (
        ("slowdown", "Figure 4 - slowdown ratio (static / SD-Policy)"),
        ("runtime", "Figure 5 - runtime ratio (static / SD-Policy)"),
        ("wait", "Figure 6 - wait-time ratio (static / SD-Policy)"),
    ):
        texts.append(render_heatmap(grids[metric], title=f"{figure_name} ({workload.name})"))
    return "\n\n".join(texts)


def scenario_daily_rows(outcome: ScenarioOutcome) -> List[Dict[str, float]]:
    """Figure 7 rows: per-day slowdowns and malleable counts of the pair."""
    if "daily_rows" not in outcome._cache:
        static, sd = _static_sd_pair(outcome)
        outcome._cache["daily_rows"] = daily_series_table(static.jobs, sd.jobs)
    return outcome._cache["daily_rows"]


def report_daily(outcome: ScenarioOutcome) -> str:
    """The Figure 7 day table (daily slowdown + malleable counts)."""
    return render_series(
        scenario_daily_rows(outcome),
        x_key="day",
        series_keys=("static_slowdown", "sd_slowdown", "malleable_jobs"),
        title=f"Figure 7 - daily average slowdown ({outcome.workload.name})",
    )


def report_runtime_models(outcome: ScenarioOutcome) -> str:
    """The Figure 8 charts: ideal vs worst-case model per workload."""
    charts: List[str] = []
    for wkey in outcome.workloads:
        entry = {
            str(cell.params.get("runtime_model", cell.label)): cell.normalized
            for cell in outcome.cells_for(wkey)
            if cell.normalized is not None
        }
        chart_values = {
            f"{model}/{metric}": entry[model][metric]
            for model in entry
            for metric in NORMALIZED_KEYS
        }
        charts.append(
            render_bar_chart(
                chart_values,
                title=f"Figure 8 - runtime models ({wkey}, normalised to static backfill)",
            )
        )
    return "\n\n".join(charts)


def realrun_improvements(
    outcome: ScenarioOutcome, power_model: Optional[Any] = None
) -> Dict[str, Any]:
    """Figure 9 statistics of a real-run scenario (energy recomputed).

    The real-run pair simulates with the application-aware runtime model
    and no in-simulation power integration; energy is recomputed here with
    the MareNostrum4-style model of :mod:`repro.realrun.energy`, exactly as
    the emulator does.
    """
    from repro.metrics.aggregates import compute_metrics
    from repro.metrics.energy import LinearPowerModel
    from repro.realrun.emulator import RealRunEmulator
    from repro.realrun.energy import real_run_energy

    # Only the default-power-model result is memoised; an explicit model
    # (the emulator's) bypasses the cache.
    cacheable = power_model is None
    if cacheable and "realrun" in outcome._cache:
        return outcome._cache["realrun"]
    static, sd = _static_sd_pair(outcome)
    workload = outcome.workload
    power_model = power_model or LinearPowerModel()
    static_energy = real_run_energy(
        static.jobs, workload.system_nodes, workload.cpus_per_node, power_model
    )
    sd_energy = real_run_energy(
        sd.jobs, workload.system_nodes, workload.cpus_per_node, power_model
    )
    static_metrics = compute_metrics(static.jobs, energy_joules=static_energy)
    sd_metrics = compute_metrics(sd.jobs, energy_joules=sd_energy)
    stats = {
        "improvements": improvement_percent(sd_metrics, static_metrics),
        "static_metrics": static_metrics,
        "sd_metrics": sd_metrics,
        "better_runtime_jobs": RealRunEmulator._better_runtime_jobs(sd.jobs),
        "malleable_scheduled": sd_metrics.malleable_scheduled,
        "static_jobs": static.jobs,
        "sd_jobs": sd.jobs,
    }
    if cacheable:
        outcome._cache["realrun"] = stats
    return stats


def report_realrun(outcome: ScenarioOutcome) -> str:
    """The Figure 9 improvement chart."""
    stats = realrun_improvements(outcome)
    return render_bar_chart(
        stats["improvements"],
        title="Figure 9 - improvement (%) of SD-Policy over static backfill",
        reference=0.0,
        fmt="{:.1f}%",
    )


def report_mix(outcome: ScenarioOutcome) -> str:
    """The Table 2 application-mix table (a workload-only scenario)."""
    from repro.workloads.applications import application_shares

    workload = outcome.workload
    shares = application_shares(workload)
    rows = [[app, f"{100 * share:.1f}%"] for app, share in shares.items()]
    scale = outcome.spec.workloads[0].scale
    return format_table(
        ["Application", "% of workload"], rows, title=f"Table 2 (scale={scale:g})"
    )


def report_faceoff(outcome: ScenarioOutcome) -> str:
    """The policy face-off report: who wins where, by workload mix.

    Per workload: every policy cell's normalised metrics.  Then a winners
    table naming, per workload × metric, the policy with the lowest
    normalised value — ties resolve to the first cell in grid order, so
    the report is deterministic — an overall win tally, and the
    schedulers' decision counters (where UB-Policy's bandwidth refusals
    become visible next to SD-Policy's pairings).
    """
    spec = outcome.spec
    blocks: List[str] = []
    wins: Dict[str, int] = {}
    winner_rows: List[List[Any]] = []
    counter_rows: List[List[Any]] = []
    stat_keys = (
        "malleable_starts",
        "rejected_by_estimate",
        "rejected_no_mates",
        "rejected_bandwidth",
    )
    for wkey, workload in outcome.workloads.items():
        cells = [c for c in outcome.cells_for(wkey) if c.normalized is not None]
        if not cells:
            blocks.append(f"{wkey}: no normalised cells (incomplete run?)")
            continue
        rows = [
            [c.label] + [c.normalized.get(k, float("nan")) for k in NORMALIZED_KEYS]
            for c in cells
        ]
        blocks.append(
            format_table(
                ["policy"] + list(NORMALIZED_KEYS),
                rows,
                title=(
                    f"{wkey} ({workload.name}, {len(workload)} jobs), "
                    f"normalised to {spec.baseline_label}"
                ),
            )
        )
        row: List[Any] = [wkey]
        for metric in NORMALIZED_KEYS:
            # min() keeps the first of equals, and cells are in grid order,
            # so ties break deterministically.
            best = min(cells, key=lambda c: c.normalized.get(metric, math.inf))
            row.append(best.label)
            wins[best.label] = wins.get(best.label, 0) + 1
        winner_rows.append(row)
        for c in cells:
            stats = c.run.scheduler_stats or {}
            counter_rows.append(
                [wkey, c.label] + [stats.get(k, "-") for k in stat_keys]
            )
    if winner_rows:
        blocks.append(
            format_table(
                ["workload"] + [f"best {m}" for m in NORMALIZED_KEYS],
                winner_rows,
                title="Who wins where (lowest normalised value wins)",
            )
        )
        tally = sorted(wins.items(), key=lambda kv: (-kv[1], kv[0]))
        blocks.append(
            "Overall wins: " + ", ".join(f"{label} {count}" for label, count in tally)
        )
    if counter_rows:
        blocks.append(
            format_table(
                ["workload", "policy"] + list(stat_keys),
                counter_rows,
                title="Scheduler decision counters",
            )
        )
    return "\n\n".join(blocks)


REPORTS = {
    "table": report_table,
    "figures1-3": report_figures_1_to_3,
    "heatmaps": report_heatmaps,
    "daily": report_daily,
    "runtime_models": report_runtime_models,
    "realrun": report_realrun,
    "mix": report_mix,
    "faceoff": report_faceoff,
}


def render_report(outcome: ScenarioOutcome) -> str:
    """Render a scenario outcome with the report its spec selects."""
    return REPORTS[outcome.spec.report](outcome)


# --------------------------------------------------------------------- #
# Built-in scenarios (one per paper figure/table)
# --------------------------------------------------------------------- #
#: MAX_SLOWDOWN grid of Figures 1-3, with the paper's display labels.
MAXSD_GRID: List[Dict[str, Any]] = [
    {"label": "MAXSD 5", "value": 5.0},
    {"label": "MAXSD 10", "value": 10.0},
    {"label": "MAXSD 50", "value": 50.0},
    {"label": "MAXSD inf", "value": "inf"},
    {"label": "DynAVGSD", "value": "dynamic"},
]

#: Benchmark scales per preset (kept in sync with benchmarks/conftest.py).
_BENCH_SCALES = {1: 0.04, 2: 0.04, 3: 0.02, 4: 0.01, 5: 0.35}


def _sim_seed(seed: Optional[int], default: int = 0) -> int:
    """Simulation seed matching a builder's workload-generation seed.

    Built-in builders forward one ``seed`` override to *both*
    :attr:`WorkloadRef.seed` (workload generation) and
    :attr:`ScenarioSpec.seed` (the simulation seed on every task), so the
    two cannot drift apart — ``--seed 42`` means 42 everywhere.
    """
    return default if seed is None else int(seed)


def _spec_figure_1_to_3(workload_id: int = 1, scale: Optional[float] = None,
                        seed: Optional[int] = None) -> ScenarioSpec:
    return ScenarioSpec(
        name=f"figure1-3-workload{workload_id}",
        description="Figures 1-3: MAX_SLOWDOWN sweep, normalised to static backfill",
        workloads=[WorkloadRef(preset=workload_id,
                               scale=_BENCH_SCALES[workload_id] if scale is None else scale,
                               seed=seed)],
        policy="sd_policy",
        seed=_sim_seed(seed),
        grid={"max_slowdown": MAXSD_GRID},
        base={"runtime_model": "ideal", "malleable_fraction": 1.0, "sharing_factor": 0.5},
        baseline={"policy": "static_backfill",
                  "kwargs": {"runtime_model": "ideal", "malleable_fraction": 1.0}},
        report="figures1-3",
    )


def _spec_static_sd_pair(name: str, report: str, description: str,
                         scale: Optional[float] = None,
                         seed: Optional[int] = None,
                         max_slowdown: Any = 10.0,
                         runtime_model: str = "ideal") -> ScenarioSpec:
    return ScenarioSpec(
        name=name,
        description=description,
        workloads=[WorkloadRef(preset=4, scale=_BENCH_SCALES[4] if scale is None else scale,
                               seed=seed)],
        policy="sd_policy",
        seed=_sim_seed(seed),
        grid={"max_slowdown": [max_slowdown]},
        base={"runtime_model": runtime_model},
        baseline={"policy": "static_backfill", "kwargs": {"runtime_model": runtime_model}},
        report=report,
    )


def _spec_figure_8(scale: Optional[float] = None, seed: Optional[int] = None,
                   max_slowdown: Any = "dynamic",
                   sharing_factor: float = 0.5) -> ScenarioSpec:
    return ScenarioSpec(
        name="figure8",
        description="Figure 8: ideal vs worst-case runtime model on workloads 1-4",
        workloads=[
            WorkloadRef(preset=wid, scale=_BENCH_SCALES[wid] if scale is None else scale,
                        seed=seed)
            for wid in (1, 2, 3, 4)
        ],
        policy="sd_policy",
        seed=_sim_seed(seed),
        grid={"runtime_model": [
            {"label": "ideal", "value": "ideal"},
            {"label": "worst_case", "value": "worst_case"},
        ]},
        base={"max_slowdown": max_slowdown, "sharing_factor": sharing_factor},
        baseline={"policy": "static_backfill", "kwargs": {}},
        report="runtime_models",
    )


def _spec_figure_9(scale: float = _BENCH_SCALES[5], seed: int = 5005,
                   sharing_factor: float = 0.5,
                   max_slowdown: Any = "dynamic") -> ScenarioSpec:
    return ScenarioSpec(
        name="figure9",
        description="Figure 9: the emulated MareNostrum4 real run (workload 5)",
        workloads=[WorkloadRef(preset=5, scale=scale, seed=seed)],
        policy="sd_policy",
        seed=_sim_seed(seed),
        grid={"max_slowdown": [max_slowdown]},
        base={
            "runtime_model": "application_aware",
            "power_model": None,
            "sharing_factor": sharing_factor,
        },
        baseline={
            "policy": "static_backfill",
            "kwargs": {"runtime_model": "application_aware", "power_model": None},
        },
        report="realrun",
    )


def _spec_mixed_paper_scale(
    scale: Optional[float] = None,
    seed: Optional[int] = None,
    swf: Optional[str] = None,
    workload_ids: Sequence[int] = (1, 2, 3, 4),
) -> ScenarioSpec:
    """The ROADMAP's paper-scale mixed rigid/malleable (+ SWF replay) study.

    Every Table 1 synthetic workload (and, when ``swf`` is given, a real
    SWF-log replay) is swept over a rigid/malleable mix × MAX_SLOWDOWN
    grid and normalised to its own static-backfill baseline.  At the
    default paper scale this expands to ``len(workloads) × (8 + 1)`` heavy
    simulations — deliberately sized for sharded fan-out: run it with
    ``--shard I/N`` against a shared ``--store`` and merge anywhere.
    """
    refs = [
        WorkloadRef(preset=wid, scale=1.0 if scale is None else scale, seed=seed)
        for wid in workload_ids
    ]
    if swf:
        refs.append(WorkloadRef(swf=swf, name="swf_replay"))
    return ScenarioSpec(
        name="mixed_paper_scale",
        description=(
            "Paper-scale mixed rigid/malleable sweep over workloads 1-4 "
            "(plus an optional SWF replay), sized for sharded fan-out"
        ),
        workloads=refs,
        policy="sd_policy",
        seed=_sim_seed(seed),
        grid={
            "malleable_fraction": [
                {"label": "rigid-75%", "value": 0.25},
                {"label": "mixed-50/50", "value": 0.5},
                {"label": "malleable-75%", "value": 0.75},
                {"label": "malleable-100%", "value": 1.0},
            ],
            "max_slowdown": [
                {"label": "MAXSD 10", "value": 10.0},
                {"label": "DynAVGSD", "value": "dynamic"},
            ],
        },
        base={"runtime_model": "ideal", "sharing_factor": 0.5},
        baseline={"policy": "static_backfill", "kwargs": {"runtime_model": "ideal"}},
        report="table",
    )


def _spec_policy_faceoff(
    scale: Optional[float] = None,
    seed: Optional[int] = None,
    workload_ids: Sequence[int] = (1, 2, 3, 4),
) -> ScenarioSpec:
    """The policy face-off: every co-scheduling policy over the paper grid.

    Workloads 1-4 get the Table 2 application mix stamped on, then every
    registered first-class policy — FCFS, static backfill, SD-Policy and
    the contention-aware UB-Policy — runs under the application-aware
    runtime model and is normalised to its workload's static-backfill
    baseline.  The ``faceoff`` report answers *who wins where, by workload
    mix*, and surfaces UB-Policy's bandwidth refusals next to SD-Policy's
    pairings.
    """
    return ScenarioSpec(
        name="policy_faceoff",
        description=(
            "Policy face-off: FCFS vs static backfill vs SD-Policy vs "
            "UB-Policy under the contention-aware runtime model"
        ),
        workloads=[
            WorkloadRef(
                preset=wid,
                scale=_BENCH_SCALES[wid] if scale is None else scale,
                seed=seed,
                applications="table2",
            )
            for wid in workload_ids
        ],
        policy=None,
        seed=_sim_seed(seed),
        grid={
            "policy": [
                {"label": "fcfs", "value": "fcfs"},
                {"label": "static_backfill", "value": "static_backfill"},
                {"label": "sd_policy", "value": "sd_policy"},
                {"label": "ub_policy", "value": "ub_policy"},
            ]
        },
        base={
            "runtime_model": "application_aware",
            "power_model": None,
            "profiles": "table2",
        },
        baseline={
            "policy": "static_backfill",
            "kwargs": {
                "runtime_model": "application_aware",
                "power_model": None,
                "profiles": "table2",
            },
        },
        report="faceoff",
    )


def _spec_table_2(scale: float = 1.0, seed: int = 5005) -> ScenarioSpec:
    return ScenarioSpec(
        name="table2",
        description="Table 2: application mix of the real-run workload (no simulation)",
        workloads=[WorkloadRef(preset=5, scale=scale, seed=seed)],
        policy=None,
        grid={},
        base={},
        baseline=None,
        report="mix",
    )


BUILTIN_SCENARIOS: Dict[str, Any] = {
    "figure1-3": _spec_figure_1_to_3,
    "figure4-6": lambda **kw: _spec_static_sd_pair(
        "figure4-6", "heatmaps",
        "Figures 4-6: per-category static/SD ratios on the CEA-Curie-like workload",
        **kw,
    ),
    "figure7": lambda **kw: _spec_static_sd_pair(
        "figure7", "daily",
        "Figure 7: daily slowdown trend and malleable counts (CEA-Curie-like)",
        **kw,
    ),
    "figure8": _spec_figure_8,
    "figure9": _spec_figure_9,
    "table2": _spec_table_2,
    "mixed_paper_scale": _spec_mixed_paper_scale,
    "policy_faceoff": _spec_policy_faceoff,
}


def builtin_scenario(name: str, **overrides) -> ScenarioSpec:
    """Build a named built-in scenario (see :data:`BUILTIN_SCENARIOS`).

    Keyword overrides are forwarded to the spec factory (``scale``, ``seed``
    and, where meaningful, ``max_slowdown`` / ``sharing_factor`` …).
    """
    if name not in BUILTIN_SCENARIOS:
        raise ScenarioError(
            f"unknown built-in scenario {name!r}; available: {sorted(BUILTIN_SCENARIOS)}"
        )
    return BUILTIN_SCENARIOS[name](**overrides)
