"""Pluggable execution backends for the sweep runner.

:class:`repro.experiments.sweep.SweepRunner` decides *what* to run (cache
probing, task ordering, result assembly); the executors here decide *how*
the cache misses are executed:

* :class:`SerialExecutor` — everything in-process, one task at a time;
* :class:`ProcessPoolExecutor` — a multiprocessing fan-out (the former
  ``SweepRunner._run_parallel`` path);
* :class:`ShardedExecutor` — executes only a deterministic ``1/N`` slice of
  the task list and records progress in a resumable JSON *shard manifest*
  inside the result store, so one sweep can be split across machines
  (or cron ticks) and resumed after a kill;
* :class:`MergeExecutor` — executes nothing: it validates that every shard
  manifest of the sweep is complete and lets the runner assemble the full
  result from the shared cache, bit-identical to a single-process run.

Sharded execution relies on the runner's result store
(:mod:`repro.store` — a shared directory, or a remote object endpoint) as
the transport between invocations: every completed task is published
atomically to the store, the manifest records its key, cache key and
status, and a resumed or merging invocation turns completed tasks into
cache hits.  The manifest is advisory for resume (the cache probe is what
skips finished work) and authoritative for merge (a merge refuses to run
until all shards report ``done``).  With a remote store, shards on
different machines need no shared filesystem at all.
"""

from __future__ import annotations

import abc
import hashlib
import logging
import multiprocessing
import os
import re
import sys
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, wait
from concurrent.futures import ProcessPoolExecutor as _FuturesProcessPool
from dataclasses import dataclass, replace
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.store import LocalFSStore, ResultStore, StoreError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a circular import
    from repro.experiments.runner import PolicyRun
    from repro.experiments.sweep import SweepTask

_log = logging.getLogger(__name__)

#: Bump when the shard manifest layout changes; old manifests are rejected.
#: v2: manifests live in the result store, records carry ``cache_key``
#: (``cache_path`` only for local-FS stores) and the shard reports its
#: quarantined-corruption count.  v3: done records also carry ``digest``,
#: the SHA-256 content digest of the published cache blob (what ``store
#: verify`` cross-checks and ``store repair`` validates against).  v4: the
#: manifest records whether the shard ran with analytics enabled
#: (top-level ``analytics`` flag; executed tasks then have per-run records
#: published under ``analytics-*`` manifests) — merging a mix of
#: analytics-aware and older shards would silently drop records, so the
#: version gate forces a consistent fleet.  v5: same again for decision
#: traces — a top-level ``trace`` flag (executed tasks then have traces
#: published under ``trace-*`` manifests next to the cache).
MANIFEST_FORMAT_VERSION = 5

#: Declared field layout of a shard manifest and of each of its ``tasks``
#: records.  ``repro.devtools.formats`` fingerprints these into
#: ``formats.lock`` and fails CI when the layout changes without a
#: ``MANIFEST_FORMAT_VERSION`` bump; the manifest-layout tests pin them to
#: what ``ShardedExecutor`` actually writes.  ``cache_path`` is the one
#: optional record field (local-FS stores only).
MANIFEST_FIELDS = (
    "format",
    "sweep_id",
    "shard_index",
    "shard_count",
    "total_tasks",
    "store",
    "cache_corruptions",
    "analytics",
    "trace",
    "tasks",
)
MANIFEST_TASK_FIELDS = (
    "index",
    "key",
    "cache_key",
    "status",
    "from_cache",
    "wall_clock_seconds",
    "digest",
    "cache_path",
)

#: Subdirectory of the cache directory holding shard manifests by default.
MANIFEST_DIR_NAME = "manifests"


class SweepError(RuntimeError):
    """A sweep task failed in a worker.

    The worker's original traceback is preserved in :attr:`worker_traceback`
    and included in the exception message, so failures in a process pool are
    as debuggable as failures in the parent.
    """

    def __init__(self, key: str, message: str, worker_traceback: str = "") -> None:
        self.key = key
        self.worker_traceback = worker_traceback
        detail = f"sweep task {key!r} failed: {message}"
        if worker_traceback:
            detail += f"\n--- worker traceback ---\n{worker_traceback}"
        super().__init__(detail)


class ExecutorError(RuntimeError):
    """Sharded execution state is unusable (missing cache, bad manifest…)."""


def resolve_worker_count(max_workers: Optional[int]) -> int:
    """Resolve an explicit/None worker count to a concrete value.

    An explicit value always wins; ``None`` reads ``REPRO_SWEEP_WORKERS``
    and falls back to the CPU count on Linux (fork) or ``1`` on spawn
    platforms, where a process pool inside a library call would re-import
    unguarded caller scripts.
    """
    if max_workers is None:
        env = os.environ.get("REPRO_SWEEP_WORKERS")
        if env:
            max_workers = int(env)
        elif sys.platform == "linux":
            max_workers = os.cpu_count() or 1
        else:
            max_workers = 1
    if max_workers < 1:
        raise ValueError("max_workers must be >= 1")
    return int(max_workers)


# --------------------------------------------------------------------- #
# Worker entry points (module level: must be picklable)
# --------------------------------------------------------------------- #
def _execute_task(task: "SweepTask") -> "PolicyRun":
    from repro.experiments.runner import run_workload

    return run_workload(
        task.workload,
        task.policy,
        label=task.label,
        seed=task.resolved_seed(),
        analytics=getattr(task, "analytics", False),
        trace=getattr(task, "trace", False),
        **task.kwargs,
    )


def _worker(indexed_task: Tuple[int, "SweepTask"]) -> Tuple[int, str, Any]:
    index, task = indexed_task
    t0 = time.perf_counter()
    try:
        run = _execute_task(task)
        return index, "ok", (run, time.perf_counter() - t0)
    # repro: allow[exc-broad] worker failures must cross the process
    # boundary as data; the parent re-raises with the original traceback
    except Exception as exc:
        return index, "error", (f"{type(exc).__name__}: {exc}", traceback.format_exc())


# --------------------------------------------------------------------- #
# The execution plan handed from the runner to an executor
# --------------------------------------------------------------------- #
@dataclass
class ExecutionPlan:
    """Everything an executor needs to run one sweep's cache misses.

    ``tasks``/``keys``/``cache_keys`` cover the *full* sweep in task order;
    ``pending`` are the indices whose results were not served from the
    cache and ``corrupt`` the subset of those whose cache entry existed but
    was quarantined as unreadable.  ``store`` is the runner's result store
    (``None`` when caching is disabled) — the transport sharded executors
    publish through.  Executors call ``complete(index, run, elapsed)`` for
    every task they finish — the runner stores the cache entry, records the
    result and fires the progress callback — and may call
    ``note_corruptions(n)`` to add corruption counts discovered outside the
    runner's own probe (a merge aggregating shard manifests does).
    ``max_workers`` is the runner's resolved worker budget, which executors
    that spawn their own inner backend must respect unless explicitly
    configured otherwise.  ``digests`` is the runner's live map of task
    index to the SHA-256 content digest of its cache blob — filled for
    cache hits up front and for every completion after ``complete``
    returns — which sharded executors record in their manifests.
    """

    tasks: Sequence["SweepTask"]
    keys: Sequence[str]
    cache_keys: Sequence[Optional[str]]
    pending: List[int]
    complete: Callable[[int, "PolicyRun", float], None]
    store: Optional[ResultStore] = None
    max_workers: int = 1
    corrupt: Sequence[int] = ()
    note_corruptions: Optional[Callable[[int], None]] = None
    digests: Optional[Dict[int, Optional[str]]] = None


class Executor(abc.ABC):
    """Execution backend protocol for :class:`SweepRunner`.

    ``partial`` declares whether the executor may legitimately leave plan
    tasks unfinished (a shard does; everything else must finish the plan).
    """

    partial: bool = False

    @abc.abstractmethod
    def execute(self, plan: ExecutionPlan) -> None:
        """Run (a subset of) ``plan.pending`` and report completions."""


# --------------------------------------------------------------------- #
# Serial and process-pool backends (extracted from SweepRunner)
# --------------------------------------------------------------------- #
class SerialExecutor(Executor):
    """Run every pending task in-process, in plan order."""

    def execute(self, plan: ExecutionPlan) -> None:
        for index in plan.pending:
            t0 = time.perf_counter()
            try:
                run = _execute_task(plan.tasks[index])
            except Exception as exc:
                raise SweepError(
                    plan.keys[index],
                    f"{type(exc).__name__}: {exc}",
                    traceback.format_exc(),
                ) from exc
            plan.complete(index, run, time.perf_counter() - t0)


class ProcessPoolExecutor(Executor):
    """Fan pending tasks out over a multiprocessing pool.

    Fork shares the already-built workload objects cheaply, but is only
    safe on Linux (macOS frameworks may abort in forked children); the
    platform default start method is used everywhere else.
    """

    def __init__(self, max_workers: int) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers

    def execute(self, plan: ExecutionPlan) -> None:
        if not plan.pending:
            return
        workers = min(self.max_workers, len(plan.pending))
        if sys.platform == "linux":
            context = multiprocessing.get_context("fork")
        else:
            context = multiprocessing.get_context()
        with _FuturesProcessPool(max_workers=workers, mp_context=context) as pool:
            try:
                futures = {
                    pool.submit(_worker, (index, plan.tasks[index])): index
                    for index in plan.pending
                }
                pending = set(futures)
                while pending:
                    # _worker never raises, so wait for completions one batch
                    # at a time: progress streams and failures cancel the
                    # remainder as soon as they are observed.
                    finished, pending = wait(pending, return_when=FIRST_COMPLETED)
                    for future in finished:
                        index = futures[future]
                        exc = future.exception()
                        if exc is not None:
                            # Pool infrastructure failure (a killed worker…).
                            raise SweepError(
                                plan.keys[index], f"{type(exc).__name__}: {exc}"
                            )
                        got_index, status, payload = future.result()
                        if status == "error":
                            message, worker_tb = payload
                            _log.error(
                                "worker failed on task %s: %s",
                                plan.keys[got_index],
                                message,
                            )
                            raise SweepError(plan.keys[got_index], message, worker_tb)
                        run, elapsed = payload
                        plan.complete(got_index, run, elapsed)
            except BaseException:
                # Task failure or interrupt: drop everything still queued so
                # the pool winds down promptly and no orphaned work keeps
                # writing cache entries behind our back.
                pool.shutdown(wait=True, cancel_futures=True)
                raise


def default_executor(max_workers: int, pending_count: int) -> Executor:
    """The executor :class:`SweepRunner` uses absent an explicit override."""
    workers = min(max_workers, max(1, pending_count))
    if workers == 1:
        return SerialExecutor()
    return ProcessPoolExecutor(workers)


# --------------------------------------------------------------------- #
# Shard manifests
# --------------------------------------------------------------------- #
def parse_shard(value: str) -> Tuple[int, int]:
    """Parse a human ``I/N`` shard selector into ``(index, count)``.

    ``I`` is 1-based on the command line (``--shard 1/4`` … ``--shard
    4/4``); the returned index is 0-based.
    """
    match = re.fullmatch(r"(\d+)/(\d+)", value.strip())
    if not match:
        raise ValueError(f"shard must look like I/N (e.g. 1/4), got {value!r}")
    index, count = int(match.group(1)), int(match.group(2))
    if count < 1 or not 1 <= index <= count:
        raise ValueError(f"shard index must be within 1..{count}, got {value!r}")
    return index - 1, count


def sweep_id(cache_keys: Sequence[Optional[str]]) -> str:
    """Stable identifier of one sweep: a hash over its ordered cache keys.

    Cache keys are content hashes of workload + full run configuration, so
    two invocations that expand the same task list agree on the id without
    sharing any state but the result store.
    """
    h = hashlib.sha256()
    for key in cache_keys:
        if key is None:
            raise ExecutorError("sweep_id needs cache keys (enable a result store)")
        h.update(key.encode("utf-8"))
        h.update(b"|")
    return h.hexdigest()[:16]


def manifest_name(sweep: str, shard_index: int, shard_count: int) -> str:
    """Canonical manifest name for one shard of one sweep."""
    return f"{sweep}.shard-{shard_index + 1}-of-{shard_count}"


def _require_store(plan: ExecutionPlan, what: str) -> ResultStore:
    if plan.store is None or any(k is None for k in plan.cache_keys):
        raise ExecutorError(
            f"{what} requires a result store (pass cache_dir/--cache-dir or a "
            "store/--store URL): the store is the transport between shard "
            "invocations"
        )
    return plan.store


def _manifest_store(
    store: ResultStore, manifest_dir: Optional[Path]
) -> ResultStore:
    """The store shard manifests go through.

    ``manifest_dir`` (the CLI's ``--manifest DIR``) redirects manifests to
    an explicit local directory — the blobs stay wherever ``store`` puts
    them.
    """
    if manifest_dir is None:
        return store
    return LocalFSStore(manifest_dir, manifest_dir=manifest_dir)


class ShardedExecutor(Executor):
    """Execute one deterministic ``1/N`` slice of a sweep, resumably.

    Tasks are partitioned round-robin by task index (task ``i`` belongs to
    shard ``i % N``), so every invocation — any machine, any time — agrees
    on the split without coordination.  Completed tasks publish to the
    shared result store; the shard's manifest (an atomic JSON document in
    the same store) records each owned task's key, cache key and status
    after every completion, so a killed shard can simply be re-invoked:
    finished tasks come back as cache hits and only unfinished ones re-run.

    The actual execution of the owned slice is delegated to a
    :class:`SerialExecutor` or :class:`ProcessPoolExecutor` picked from
    ``max_workers`` exactly like an unsharded run.
    """

    partial = True

    def __init__(
        self,
        shard_index: int,
        shard_count: int,
        manifest_dir: Optional[Union[str, Path]] = None,
        max_workers: Optional[int] = None,
    ) -> None:
        if shard_count < 1:
            raise ValueError("shard_count must be >= 1")
        if not 0 <= shard_index < shard_count:
            raise ValueError(
                f"shard_index must be within 0..{shard_count - 1}, got {shard_index}"
            )
        self.shard_index = shard_index
        self.shard_count = shard_count
        self.manifest_dir = Path(manifest_dir) if manifest_dir is not None else None
        self.max_workers = max_workers

    def owns(self, index: int) -> bool:
        return index % self.shard_count == self.shard_index

    # ------------------------------------------------------------------ #
    def execute(self, plan: ExecutionPlan) -> None:
        if not plan.tasks:
            return
        store = _require_store(plan, "sharded execution")
        manifest_store = _manifest_store(store, self.manifest_dir)
        sweep = sweep_id(plan.cache_keys)
        name = manifest_name(sweep, self.shard_index, self.shard_count)

        owned = [i for i in range(len(plan.tasks)) if self.owns(i)]
        pending = [i for i in plan.pending if self.owns(i)]
        pending_set = set(pending)
        records: Dict[int, Dict[str, Any]] = {}
        blob_path = getattr(store, "blob_path", None)
        digests = plan.digests if plan.digests is not None else {}
        for i in owned:
            records[i] = {
                "index": i,
                "key": plan.keys[i],
                "cache_key": plan.cache_keys[i],
                "status": "pending" if i in pending_set else "done",
                "from_cache": i not in pending_set,
                "wall_clock_seconds": 0.0,
                # Blob content digest (v3) — known up front for cache hits,
                # filled in on completion for freshly-executed tasks.
                "digest": digests.get(i),
            }
            if blob_path is not None:  # local-FS convenience for humans
                records[i]["cache_path"] = str(blob_path(plan.cache_keys[i]))

        # Corruptions quarantined by earlier invocations of this shard
        # survive manifest rewrites, so a merge reports everything any
        # shard ever evicted, not just the final probes.  The eviction
        # removes the blob, so later probes don't re-observe it; the count
        # is best-effort under concurrency — two shards probing the same
        # corrupt blob in the same instant may both record it.
        prior_corruptions = 0
        try:
            prior = manifest_store.read_manifest(name)
        except StoreError:
            prior = None
        if prior is not None and prior.get("sweep_id") == sweep:
            prior_corruptions = int(prior.get("cache_corruptions", 0))
        corruptions = prior_corruptions + len(plan.corrupt)

        def write_manifest() -> None:
            manifest_store.write_manifest(
                name,
                {
                    "format": MANIFEST_FORMAT_VERSION,
                    "sweep_id": sweep,
                    "shard_index": self.shard_index,
                    "shard_count": self.shard_count,
                    "total_tasks": len(plan.tasks),
                    "store": store.url,
                    "cache_corruptions": corruptions,
                    # v4: whether this shard captures per-job records
                    # (published as analytics-* manifests next to the cache).
                    "analytics": any(
                        getattr(t, "analytics", False) for t in plan.tasks
                    ),
                    # v5: whether this shard records decision traces
                    # (published as trace-* manifests next to the cache).
                    "trace": any(
                        getattr(t, "trace", False) for t in plan.tasks
                    ),
                    "tasks": [records[i] for i in owned],
                },
            )
            _log.debug("wrote shard manifest %s to %s", name, manifest_store.url)

        write_manifest()

        def complete(index: int, run: "PolicyRun", elapsed: float) -> None:
            plan.complete(index, run, elapsed)
            records[index].update(
                status="done",
                wall_clock_seconds=elapsed,
                digest=digests.get(index),
            )
            write_manifest()

        # An explicit max_workers on the executor wins; otherwise inherit
        # the runner's resolved budget (a caller that asked for serial
        # execution must not get a forked pool behind its back).
        budget = (
            plan.max_workers
            if self.max_workers is None
            else resolve_worker_count(self.max_workers)
        )
        inner = default_executor(budget, len(pending))
        try:
            inner.execute(replace(plan, pending=pending, complete=complete))
        except SweepError as err:
            for record in records.values():
                if record["key"] == err.key and record["status"] == "pending":
                    record["status"] = "failed"
            write_manifest()
            raise


class MergeExecutor(Executor):
    """Assemble a sharded sweep: validate every shard manifest, run nothing.

    A merge succeeds only when (a) the manifest directory holds one manifest
    per shard of this sweep, (b) every manifest reports every owned task
    ``done``, and (c) the cache already served every task (the runner found
    no misses).  The runner then returns the full :class:`SweepResult`
    straight from the cache — through the exact same assembly code as a
    single-process run, so the merged result is bit-identical to it.
    """

    def __init__(self, manifest_dir: Optional[Union[str, Path]] = None) -> None:
        self.manifest_dir = Path(manifest_dir) if manifest_dir is not None else None

    # ------------------------------------------------------------------ #
    def _load_manifests(
        self, manifest_store: ResultStore, sweep: str
    ) -> List[Dict[str, Any]]:
        names = manifest_store.list_manifests(prefix=f"{sweep}.shard-")
        if not names:
            raise ExecutorError(
                f"no shard manifests for sweep {sweep} in {manifest_store.url}; "
                "run the shards first (--shard I/N with the same task list "
                "and result store)"
            )
        manifests = []
        for name in names:
            try:
                manifest = manifest_store.read_manifest(name)
            except StoreError as exc:
                raise ExecutorError(f"unreadable shard manifest {name}: {exc}") from exc
            if manifest is None:  # deleted between list and read
                continue
            if manifest.get("format") != MANIFEST_FORMAT_VERSION:
                raise ExecutorError(
                    f"shard manifest {name} has format "
                    f"{manifest.get('format')!r}; expected "
                    f"{MANIFEST_FORMAT_VERSION} (re-run the shards with this "
                    "version — completed tasks come back as cache hits)"
                )
            if manifest.get("sweep_id") != sweep:
                raise ExecutorError(f"shard manifest {name} is for another sweep")
            manifests.append(manifest)
        if not manifests:
            raise ExecutorError(
                f"no shard manifests for sweep {sweep} in {manifest_store.url}"
            )
        return manifests

    def execute(self, plan: ExecutionPlan) -> None:
        if not plan.tasks:
            return
        store = _require_store(plan, "merging a sharded sweep")
        manifest_store = _manifest_store(store, self.manifest_dir)
        sweep = sweep_id(plan.cache_keys)
        manifests = self._load_manifests(manifest_store, sweep)

        counts = {m["shard_count"] for m in manifests}
        if len(counts) != 1:
            raise ExecutorError(
                f"shard manifests disagree on the shard count: {sorted(counts)}"
            )
        count = counts.pop()
        seen = {m["shard_index"] for m in manifests}
        missing_shards = sorted(set(range(count)) - seen)
        if missing_shards:
            human = [f"{i + 1}/{count}" for i in missing_shards]
            raise ExecutorError(f"shard(s) {', '.join(human)} have not run yet")

        unfinished: List[str] = []
        covered: set = set()
        for manifest in manifests:
            for record in manifest["tasks"]:
                covered.add(record["key"])
                if record["status"] != "done":
                    unfinished.append(
                        f"{record['key']} ({record['status']}, "
                        f"shard {manifest['shard_index'] + 1}/{count})"
                    )
        if unfinished:
            raise ExecutorError(
                "cannot merge: unfinished shard tasks: " + "; ".join(sorted(unfinished))
            )
        uncovered = sorted(set(plan.keys) - covered)
        if uncovered:
            raise ExecutorError(
                f"shard manifests do not cover task(s) {uncovered}; were the "
                "shards run with a different task list?"
            )
        if plan.pending:
            corrupt = sorted(set(plan.pending) & set(plan.corrupt))
            if corrupt:
                quarantined = [plan.keys[i] for i in corrupt]
                raise ExecutorError(
                    f"{len(corrupt)} cache entr"
                    f"{'y was' if len(corrupt) == 1 else 'ies were'} corrupt and "
                    f"quarantined (*.pkl.corrupt): {quarantined}; re-run the "
                    "owning shard(s) to regenerate them, then merge again"
                )
            missing = [plan.keys[i] for i in plan.pending]
            raise ExecutorError(
                f"manifests report every shard done but the cache is missing "
                f"{missing}; was the store pruned or changed?"
            )
        # Surface what the shards quarantined while they ran, so the merged
        # result's ``cache_corruptions`` covers the whole fan-out, not just
        # this process's (clean) probe.
        shard_corruptions = sum(int(m.get("cache_corruptions", 0)) for m in manifests)
        if plan.note_corruptions is not None and shard_corruptions:
            plan.note_corruptions(shard_corruptions)
