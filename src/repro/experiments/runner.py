"""Run one workload under one policy and collect its metrics."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

from repro.analytics.records import JobRecordSink, RunRecords
from repro.core.policy import make_policy, policy_accepts_profiles
from repro.core.runtime_model import RuntimeModel, WorstCaseRuntimeModel
from repro.metrics.aggregates import WorkloadMetrics, compute_metrics
from repro.metrics.energy import LinearPowerModel
from repro.schedulers.base import Scheduler
from repro.simulator.cluster import Cluster
from repro.simulator.job import Job
from repro.simulator.simulation import Simulation, SimulationResult
from repro.telemetry.trace import TraceRecorder
from repro.workloads.job_record import Workload


def cluster_for(workload: Workload, sockets: int = 2) -> Cluster:
    """Build the cluster described by a workload's system fields."""
    cores_per_socket = max(1, workload.cpus_per_node // sockets)
    # If the node width is not divisible by the socket count, fall back to a
    # single socket so the CPU count stays exact.
    if cores_per_socket * sockets != workload.cpus_per_node:
        sockets, cores_per_socket = 1, workload.cpus_per_node
    return Cluster(
        num_nodes=workload.system_nodes,
        sockets=sockets,
        cores_per_socket=cores_per_socket,
    )


def make_scheduler(policy: Union[str, Scheduler, Callable[[], Scheduler]], **kwargs) -> Scheduler:
    """Build a scheduler from a name, an instance, or a zero-arg factory.

    Names resolve through the co-scheduling policy registry
    (:mod:`repro.core.policy`): ``"fcfs"``, ``"static_backfill"``
    (``"backfill"``), ``"sd_policy"`` and ``"ub_policy"`` by default, plus
    anything registered via :func:`repro.core.policy.register_policy`;
    keyword arguments are forwarded to the policy's config (e.g.
    :class:`repro.core.sd_policy.SDPolicyConfig`).  An unknown name raises
    a ``ValueError`` listing the available policies.
    """
    if isinstance(policy, Scheduler):
        return policy
    if callable(policy) and not isinstance(policy, str):
        return policy()
    return make_policy(policy, **kwargs)


#: Sentinel distinguishing "use the default power model" from an explicit
#: ``None`` (which disables energy accounting).  The model itself is built
#: per call so no mutable default instance is shared across runs.
_DEFAULT_POWER_MODEL = object()


@dataclass
class PolicyRun:
    """The outcome of running one workload under one policy."""

    label: str
    workload_name: str
    result: SimulationResult
    metrics: WorkloadMetrics
    wall_clock_seconds: float
    scheduler_stats: Dict[str, int] = field(default_factory=dict)
    #: Per-job records captured by the analytics sink (``analytics=True``);
    #: stripped before the run is pickled into the result cache — the
    #: records are published as their own blob.
    records: Optional[RunRecords] = None
    #: Decision-trace recorder (``trace=True``); stripped before the run is
    #: pickled into the result cache — the trace is published as its own
    #: blob under ``<cache_key>-trace``.
    trace: Optional[TraceRecorder] = None
    #: Wall-clock phase timers of the run (``"simulate"``, ``"metrics"``),
    #: populated unconditionally so the cached payload is byte-identical
    #: with and without ``--trace``.
    phases: Dict[str, float] = field(default_factory=dict)

    @property
    def jobs(self) -> List[Job]:
        """The completed jobs of the run."""
        return self.result.jobs


def run_workload(
    workload: Workload,
    policy: Union[str, Scheduler, Callable[[], Scheduler]] = "static_backfill",
    runtime_model: Optional[Union[str, RuntimeModel]] = None,
    malleable_fraction: float = 1.0,
    tasks_per_node: int = 1,
    power_model: Optional[LinearPowerModel] = _DEFAULT_POWER_MODEL,
    use_requested_time_for_predictions: bool = True,
    contention_coefficient: Optional[float] = None,
    profiles: Optional[str] = None,
    label: Optional[str] = None,
    seed: int = 0,
    retain_jobs: bool = True,
    analytics: bool = False,
    trace: bool = False,
    **policy_kwargs,
) -> PolicyRun:
    """Simulate a workload under a policy and return metrics.

    Parameters mirror the knobs the paper varies: the policy (static
    backfill vs SD-Policy with a MAX_SLOWDOWN setting), the runtime model
    (ideal vs worst case, Figure 8; ``"application_aware"`` selects the
    contention-aware interference model, with an optional
    ``contention_coefficient``), and the malleable fraction of the workload
    (all-malleable in the paper's simulations).  ``profiles`` selects a
    named application-profile set (:data:`repro.core.profiles.PROFILE_SETS`)
    for profile-aware policies (UB-Policy) and the application-aware model;
    the default ``None`` leaves both at their own defaults and keeps legacy
    cache keys unchanged.

    With ``retain_jobs=False`` the run streams: jobs are materialised
    lazily, folded into aggregates at completion and discarded, so memory
    stays near-constant in the job count.  ``PolicyRun.metrics`` carries the
    same values either way (bit-identical summation order), but
    ``PolicyRun.jobs`` is empty, so per-job reports (heatmaps, daily
    series, real-run tables) need the default retained mode.

    With ``analytics=True`` a :class:`repro.analytics.JobRecordSink` rides
    the completion dispatch and ``PolicyRun.records`` carries one columnar
    row per job (~100 bytes each — compatible with streaming mode), from
    which every aggregate is reconstructible bit-identically.

    With ``trace=True`` a :class:`repro.telemetry.TraceRecorder` rides the
    simulation and ``PolicyRun.trace`` carries the scheduler's decision
    events (submit/start/end, backfill holes, mate selection).  Traces are
    byte-deterministic: only simulation-time facts are recorded, so the
    same spec and seed yield identical bytes regardless of sharding or
    ``retain_jobs``.
    """
    if (
        profiles is not None
        and isinstance(policy, str)
        and policy_accepts_profiles(policy)
    ):
        policy_kwargs.setdefault("profiles", profiles)
    scheduler = make_scheduler(policy, **policy_kwargs)
    if power_model is _DEFAULT_POWER_MODEL:
        power_model = LinearPowerModel()
    if isinstance(runtime_model, str):
        if runtime_model == "application_aware":
            from repro.core.contention import (
                DEFAULT_CONTENTION_COEFFICIENT,
                ApplicationAwareRuntimeModel,
                ContentionModel,
            )

            runtime_model = ApplicationAwareRuntimeModel(
                contention=ContentionModel(
                    contention_coefficient=(
                        DEFAULT_CONTENTION_COEFFICIENT
                        if contention_coefficient is None
                        else contention_coefficient
                    ),
                    profiles=profiles if profiles is not None else "table2",
                )
            )
        else:
            from repro.core.runtime_model import get_model

            runtime_model = get_model(runtime_model)
    cluster = cluster_for(workload)
    record_sink = JobRecordSink() if analytics else None
    recorder = TraceRecorder() if trace else None
    sim = Simulation(
        cluster,
        scheduler,
        runtime_model=runtime_model or WorstCaseRuntimeModel(),
        power_model=power_model,
        use_requested_time_for_predictions=use_requested_time_for_predictions,
        retain_jobs=retain_jobs,
        sinks=(record_sink,) if record_sink is not None else (),
        trace=recorder,
    )
    if hasattr(runtime_model, "bind_cluster"):
        runtime_model.bind_cluster(cluster, sim.jobs)
    job_stream = workload.iter_jobs(
        cpus_per_node=cluster.cpus_per_node,
        malleable_fraction=malleable_fraction,
        tasks_per_node=tasks_per_node,
        seed=seed,
    )
    if retain_jobs:
        sim.submit_jobs(job_stream)
    else:
        sim.submit_stream(job_stream)
    started = time.perf_counter()
    result = sim.run()
    elapsed = time.perf_counter() - started
    metrics_started = time.perf_counter()
    if retain_jobs:
        metrics = compute_metrics(
            result.jobs,
            energy_joules=result.energy_joules,
            first_submit=result.first_submit,
        )
    else:
        metrics = sim.streaming.workload_metrics(
            energy_joules=result.energy_joules,
            first_submit=result.first_submit,
        )
    phases = {
        "simulate": elapsed,
        "metrics": time.perf_counter() - metrics_started,
    }
    stats = scheduler.stats() if hasattr(scheduler, "stats") else {}
    run_label = label or result.scheduler_name
    records: Optional[RunRecords] = None
    if record_sink is not None:
        records = RunRecords(
            array=record_sink.to_array(),
            meta={
                "workload": workload.name,
                "policy": policy if isinstance(policy, str) else result.scheduler_name,
                "label": run_label,
                "seed": int(seed),
                "first_submit": result.first_submit,
                "energy_joules": result.energy_joules,
                "num_jobs": result.num_jobs,
            },
        )
    if recorder is not None:
        # Simulation-time-determined identity only — wall-clock facts would
        # break the trace blob's byte determinism.
        recorder.meta.update(
            {
                "workload": workload.name,
                "policy": policy if isinstance(policy, str) else result.scheduler_name,
                "scheduler": result.scheduler_name,
                "label": run_label,
                "seed": int(seed),
                "num_jobs": result.num_jobs,
            }
        )
    return PolicyRun(
        label=run_label,
        workload_name=workload.name,
        result=result,
        metrics=metrics,
        wall_clock_seconds=elapsed,
        scheduler_stats=stats,
        records=records,
        trace=recorder,
        phases=phases,
    )
